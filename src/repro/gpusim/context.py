"""Vectorized SIMT execution context.

The simulator executes a whole grid in lockstep: every simulated thread is a
*lane* of flat numpy vectors, organized grid-major as

    lane = block_id * threads_per_block + lane_in_block
    warp = lane // warp_size            (warps never straddle blocks)

Kernel bodies are ordinary Python functions that receive a
:class:`GridContext` and operate on these lane vectors.  Divergence is
modelled with boolean *masks* plus SIMD cost accounting: a warp pays for an
instruction when **any** of its lanes executes it, so a half-masked warp is
exactly as slow as a full one — the thread-divergence penalty that motivates
warp-level decisions and herded perforation in the paper (§3.1.2, §3.1.5).

The context exposes:

* identity vectors (``thread_id``, ``block_id``, ``lane_in_warp``, ...);
* cost-charging primitives (``flops``, ``sfu``, ``global_read/write``,
  ``shared_access``, ``barrier``, ``atomic``);
* warp collectives (``ballot``, ``warp_sum``, ``warp_max``, ``warp_any``) and
  a block reduction built from the ballot+atomic pattern of §3.3;
* shared-memory allocation through :class:`~repro.gpusim.shared.SharedMemoryPool`;
* a grid-stride loop helper matching OpenMP
  ``target teams distribute parallel for`` scheduling.

Lockstep execution is semantically safe for the data-parallel kernels the
paper evaluates; block barriers become synchronization *checks* — reaching a
barrier under block-divergent masks raises
:class:`~repro.errors.SimulatedDeadlockError`, reproducing the deadlock
hazard of §3.1.2 instead of hanging.

Fast path
---------

Every charging primitive has two implementations selected by
``GridContext(fast_path=...)`` (default: :func:`repro.gpusim.arena.fast_path_default`,
i.e. on unless ``REPRO_SIM_FASTPATH=0``):

* the **slow path** is the original, allocation-heavy formulation, kept
  verbatim as the in-process byte-identity reference;
* the **fast path** produces bit-identical ``warp_cycles``, counters,
  collectives, and memory traffic while doing near-zero allocations in
  steady state: temporaries live in a per-launch
  :class:`~repro.gpusim.arena.ScratchArena`, the per-warp active vector of
  a given mask object is identity-cached, the depth-1 all-true mask
  short-circuits every reshape-reduce, and counter accumulation is
  journaled per call and folded into :class:`CycleCounters` lazily on
  ``ctx.counters`` access (finalized once per launch).

Fast-path invariants callers must respect:

* arrays returned by collectives (``ballot``, ``warp_active_count``,
  ``warp_reduce``, ``block_count``, ``block_active_count``) are **borrowed**
  scratch — valid until the same collective is called again on this
  context.  (``global_read`` results are always fresh.)
* mask arrays passed to charging primitives are treated as immutable;
  in-place mutation of a previously used mask object must be followed by
  :meth:`GridContext.invalidate_mask_cache` (pushing/popping masks and the
  approximation runtime's invocation boundaries do this automatically).
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.errors import ConfigurationError, SimulatedDeadlockError
from repro.gpusim.arena import ScratchArena, fast_path_default
from repro.gpusim.cost import CycleCounters
from repro.gpusim.device import MEMORY_SEGMENT_BYTES, DeviceSpec
from repro.gpusim.memory import DeviceMemory, coalesced_transactions
from repro.gpusim.shared import SharedMemoryPool

#: Size of the identity-keyed per-warp active-vector cache.  Entries own a
#: reference to their key array, so an ``id()`` can never be recycled while
#: its entry is live; the cache is cleared before its 16th insertion, so a
#: rotation slot is never overwritten while a live entry still points at it.
_ACTIVE_CACHE_SLOTS = 16


class GridContext:
    """Execution state for one simulated kernel launch."""

    def __init__(
        self,
        device: DeviceSpec,
        num_blocks: int,
        threads_per_block: int,
        memory: DeviceMemory | None = None,
        shared_capacity: int | None = None,
        sanitizer=None,
        fast_path: bool | None = None,
    ) -> None:
        if num_blocks <= 0 or threads_per_block <= 0:
            raise ConfigurationError("grid and block sizes must be positive")
        if threads_per_block % device.warp_size:
            raise ConfigurationError(
                f"threads_per_block ({threads_per_block}) must be a multiple "
                f"of the warp size ({device.warp_size})"
            )
        if threads_per_block > device.max_threads_per_block:
            raise ConfigurationError(
                f"threads_per_block ({threads_per_block}) exceeds the device "
                f"limit ({device.max_threads_per_block})"
            )
        self.device = device
        self.num_blocks = int(num_blocks)
        self.threads_per_block = int(threads_per_block)
        self.warp_size = int(device.warp_size)
        self.warps_per_block = self.threads_per_block // self.warp_size
        self.num_warps = self.num_blocks * self.warps_per_block
        self.total_threads = self.num_blocks * self.threads_per_block

        lane = np.arange(self.total_threads, dtype=np.int64)
        #: Global thread id of each lane.
        self.thread_id = lane
        #: Block owning each lane.
        self.block_id = lane // self.threads_per_block
        #: Thread index within the block.
        self.lane_in_block = lane % self.threads_per_block
        #: Lane index within the warp.
        self.lane_in_warp = lane % self.warp_size
        #: Warp index within the block.
        self.warp_in_block = self.lane_in_block // self.warp_size
        #: Global warp id of each lane.
        self.warp_id = lane // self.warp_size

        self.memory = memory if memory is not None else DeviceMemory(device)
        #: Optional ApproxSan observer (:mod:`repro.analysis.sanitizer`).
        #: Every hook below is gated on ``is not None`` and charges nothing,
        #: so the ``sanitizer=None`` path is byte-identical in timings and
        #: counters.
        self.sanitizer = sanitizer
        cap = device.shared_mem_per_block if shared_capacity is None else shared_capacity
        self.shared = SharedMemoryPool(self.num_blocks, cap, observer=sanitizer)

        #: Cycles accumulated by each warp (timing-model input).
        self.warp_cycles = np.zeros(self.num_warps, dtype=np.float64)
        self._counters = CycleCounters()
        self._mask_stack: list[np.ndarray] = [
            np.ones(self.total_threads, dtype=bool)
        ]
        #: Free-form per-launch scratch used by the approximation runtime to
        #: keep region state across invocations.
        self.region_state: dict = {}

        #: Fast-path state.  ``fast`` selects the implementation; the arena
        #: holds every steady-state temporary; the journal holds deferred
        #: ``(counter_field, delta)`` contributions in call order.
        self.fast = fast_path_default() if fast_path is None else bool(fast_path)
        self.arena = ScratchArena()
        self._journal: list[tuple[str, float]] = []
        self._base_mask = self._mask_stack[0]
        self._uniform_active = np.ones(self.num_warps, dtype=bool)
        self._uniform_active.setflags(write=False)
        self._active_cache: dict[int, tuple] = {}
        self._active_slot = 0

    # ------------------------------------------------------------------
    # counters (deferred finalization)
    # ------------------------------------------------------------------
    @property
    def counters(self) -> CycleCounters:
        """Public cycle counters.

        On the fast path, per-call contributions are journaled and folded
        in **in call order** here — bit-identical to eager accumulation,
        because the same floats are added in the same sequence.  Reading
        mid-kernel (as Binomial's barrier-elision adjustment does) flushes
        everything journaled so far, so direct mutation of the returned
        object interleaves exactly as it would eagerly.
        """
        if self._journal:
            self._counters.apply_journal(self._journal)
            self._journal.clear()
        return self._counters

    @counters.setter
    def counters(self, value: CycleCounters) -> None:
        self._journal.clear()
        self._counters = value

    # ------------------------------------------------------------------
    # masks / divergence
    # ------------------------------------------------------------------
    @property
    def mask(self) -> np.ndarray:
        """Current active-lane mask (top of the divergence stack)."""
        return self._mask_stack[-1]

    def push_mask(self, mask: np.ndarray) -> None:
        """Enter a divergent region: new mask = current AND ``mask``."""
        m = np.logical_and(self.mask, np.asarray(mask, dtype=bool))
        self._mask_stack.append(m)
        self._active_cache.clear()

    def pop_mask(self) -> np.ndarray:
        """Leave the innermost divergent region."""
        if len(self._mask_stack) == 1:
            raise RuntimeError("mask stack underflow")
        self._active_cache.clear()
        return self._mask_stack.pop()

    @contextmanager
    def masked(self, mask: np.ndarray):
        """Context manager form of push_mask/pop_mask."""
        self.push_mask(mask)
        try:
            yield self.mask
        finally:
            self.pop_mask()

    def invalidate_mask_cache(self) -> None:
        """Drop cached per-warp active vectors.

        Required only if a mask array previously passed to a charging
        primitive has been mutated **in place** (the cache is keyed by
        array identity).  The approximation runtime calls this at every
        region-invocation and perforation-step boundary.
        """
        self._active_cache.clear()

    def _warp_any(self, mask: np.ndarray | None = None) -> np.ndarray:
        """Bool per warp: does any lane of the warp execute?"""
        if self.fast:
            return self._active_info(mask)[0]
        m = self.mask if mask is None else np.logical_and(self.mask, mask)
        return m.reshape(self.num_warps, self.warp_size).any(axis=1)

    # -- fast-path mask helpers ----------------------------------------
    def _combined_mask(self, mask) -> np.ndarray:
        """Effective bool mask = divergence-stack top AND ``mask``.

        Returns the base all-true mask object itself when nothing masks,
        which downstream fast paths test by identity to short-circuit.
        """
        if mask is None:
            return self._mask_stack[-1]
        if len(self._mask_stack) == 1:
            if isinstance(mask, np.ndarray) and mask.dtype == np.bool_:
                return mask
            return np.asarray(mask, dtype=bool)
        return np.logical_and(self._mask_stack[-1], mask)

    def _active_info(self, mask) -> tuple[np.ndarray, int]:
        """Per-warp active vector + number of active warps, cached by the
        identity of the combined mask object (borrowed; do not mutate)."""
        if mask is None:
            m = self._mask_stack[-1]
        elif len(self._mask_stack) == 1:
            if isinstance(mask, np.ndarray) and mask.dtype == np.bool_:
                m = mask
            else:
                m = np.asarray(mask, dtype=bool)
        else:
            m = np.logical_and(self._mask_stack[-1], mask)
        if m is self._base_mask:
            return self._uniform_active, self.num_warps
        cache = self._active_cache
        ent = cache.get(id(m))
        if ent is not None and ent[0] is m:
            return ent[1], ent[2]
        if len(cache) >= _ACTIVE_CACHE_SLOTS:
            cache.clear()
        buf = self.arena.buf(
            ("warp_any", self._active_slot), (self.num_warps,), np.bool_
        )
        self._active_slot = (self._active_slot + 1) % _ACTIVE_CACHE_SLOTS
        np.any(m.reshape(self.num_warps, self.warp_size), axis=1, out=buf)
        count = int(np.count_nonzero(buf))
        cache[id(m)] = (m, buf, count)
        return buf, count

    def _charge_warps_counted(self, cyc, active: np.ndarray, count: int) -> None:
        """``charge_warps`` given a precomputed active-warp count: the
        all-warps case adds unmasked (bitwise-identical to the fancy-index
        add over an all-true mask) and skips indexing entirely."""
        if count == self.num_warps:
            self.warp_cycles += cyc
        else:
            self.warp_cycles[active] += cyc

    # ------------------------------------------------------------------
    # cycle charging
    # ------------------------------------------------------------------
    def charge_warps(self, cycles, warp_mask: np.ndarray | None = None) -> None:
        """Add ``cycles`` to each warp selected by ``warp_mask``.

        ``cycles`` may be a scalar or a per-warp array.
        """
        if warp_mask is None:
            self.warp_cycles += cycles
        else:
            if np.isscalar(cycles):
                self.warp_cycles[warp_mask] += cycles
            else:
                self.warp_cycles += np.where(warp_mask, cycles, 0.0)

    def flops(self, n: float, mask: np.ndarray | None = None) -> None:
        """Charge ``n`` single-precision-equivalent FLOPs per active lane.

        SIMD semantics: a warp with at least one active lane pays the full
        ``n * alu_cycles``; fully inactive warps pay nothing.
        """
        if self.fast:
            active, count = self._active_info(mask)
            cyc = float(n) * self.device.alu_cycles
            self._charge_warps_counted(cyc, active, count)
            self._journal.append(("alu_cycles", cyc * count))
            return
        active = self._warp_any(mask)
        cyc = float(n) * self.device.alu_cycles
        self.charge_warps(cyc, active)
        self.counters.alu_cycles += cyc * int(active.sum())

    def flops_per_lane(self, n_per_lane: np.ndarray, mask: np.ndarray | None = None) -> None:
        """Charge a per-lane variable FLOP count; warps pay their max lane.

        Models per-lane loops with data-dependent trip counts (e.g. LavaMD
        neighbour loops): SIMD warps run as long as their slowest lane.
        """
        if self.fast:
            m = self._combined_mask(mask)
            arena = self.arena
            lanes = arena.buf("fpl_lanes", (self.total_threads,), np.float64)
            lanes.fill(0.0)
            np.copyto(lanes, n_per_lane, where=m)
            per_warp = arena.buf("fpl_warp", (self.num_warps,), np.float64)
            lanes.reshape(self.num_warps, self.warp_size).max(axis=1, out=per_warp)
            cyc = arena.buf("fpl_cyc", (self.num_warps,), np.float64)
            np.multiply(per_warp, self.device.alu_cycles, out=cyc)
            self.warp_cycles += cyc
            self._journal.append(("alu_cycles", float(cyc.sum())))
            return
        m = self.mask if mask is None else np.logical_and(self.mask, mask)
        lanes = np.where(m, np.asarray(n_per_lane, dtype=np.float64), 0.0)
        per_warp = lanes.reshape(self.num_warps, self.warp_size).max(axis=1)
        cyc = per_warp * self.device.alu_cycles
        self.warp_cycles += cyc
        self.counters.alu_cycles += float(cyc.sum())

    def sfu(self, n: float, mask: np.ndarray | None = None) -> None:
        """Charge ``n`` special-function ops (exp/log/sqrt/...) per lane."""
        if self.fast:
            active, count = self._active_info(mask)
            cyc = float(n) * self.device.sfu_cycles
            self._charge_warps_counted(cyc, active, count)
            self._journal.append(("sfu_cycles", cyc * count))
            return
        active = self._warp_any(mask)
        cyc = float(n) * self.device.sfu_cycles
        self.charge_warps(cyc, active)
        self.counters.sfu_cycles += cyc * int(active.sum())

    # ------------------------------------------------------------------
    # global memory
    # ------------------------------------------------------------------
    def _charge_global(self, byte_addresses: np.ndarray, mask: np.ndarray | None) -> None:
        if self.fast:
            m = self._combined_mask(mask)
            self._charge_global_fast(
                np.asarray(byte_addresses, dtype=np.int64), m, m is self._base_mask
            )
            return
        m = self.mask if mask is None else np.logical_and(self.mask, mask)
        # full_mask=False pins the sort-based reference path: the slow
        # context is the in-process baseline the fast path is measured
        # against, so it must not silently inherit the analytic shortcut.
        txns = coalesced_transactions(
            np.asarray(byte_addresses, dtype=np.int64),
            m,
            self.warp_size,
            full_mask=False,
        )
        cyc = txns * self.device.mem_txn_cycles
        self.warp_cycles += cyc
        ntx = int(txns.sum())
        self.counters.mem_cycles += float(cyc.sum())
        self.counters.global_transactions += ntx
        self.counters.dram_bytes += ntx * MEMORY_SEGMENT_BYTES
        self.counters.global_accesses += 1

    def _charge_global_fast(self, addr: np.ndarray, m: np.ndarray, uniform: bool) -> None:
        arena = self.arena
        txns = coalesced_transactions(
            addr,
            m,
            self.warp_size,
            # True: skip the all-lanes check; None: let the helper test the
            # mask itself (a non-base mask can still be all-true, e.g. full
            # grid-stride steps) so affine address vectors stay analytic.
            full_mask=True if uniform else None,
            out=arena.buf("gmem_txns", (self.num_warps,), np.int64),
            scratch=arena,
        )
        cyc = np.multiply(
            txns,
            self.device.mem_txn_cycles,
            out=arena.buf("gmem_cyc", (self.num_warps,), np.float64),
        )
        self.warp_cycles += cyc
        ntx = int(txns.sum())
        j = self._journal
        j.append(("mem_cycles", float(cyc.sum())))
        j.append(("global_transactions", ntx))
        j.append(("dram_bytes", ntx * MEMORY_SEGMENT_BYTES))
        j.append(("global_accesses", 1))

    def global_read(
        self, arr: np.ndarray, idx: np.ndarray, mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Read ``arr[idx]`` per lane, charging coalescing-aware cost.

        ``idx`` is a per-lane element index into a flat device array.  Lanes
        outside the mask return 0 and issue no memory request.  The returned
        array is always freshly allocated (it escapes to application code).
        """
        if self.fast:
            m = self._combined_mask(mask)
            uniform = m is self._base_mask
            arena = self.arena
            safe = arena.buf("gmem_safe", (self.total_threads,), np.int64)
            if uniform:
                np.copyto(safe, idx, casting="unsafe")
            else:
                safe.fill(0)
                np.copyto(safe, idx, where=m, casting="unsafe")
            addr = arena.buf("gmem_addr", (self.total_threads,), np.int64)
            np.multiply(safe, arr.itemsize, out=addr)
            self._charge_global_fast(addr, m, uniform)
            if self.sanitizer is not None:
                self.sanitizer.on_global_read(arr, safe, m)
            flat = arr.reshape(-1)
            gathered = arena.buf("gmem_gather", (self.total_threads,), flat.dtype)
            np.take(flat, safe, out=gathered)
            if uniform:
                return gathered.copy()
            return np.where(m, gathered, np.zeros((), dtype=arr.dtype))
        m = self.mask if mask is None else np.logical_and(self.mask, mask)
        safe = np.where(m, idx, 0)
        self._charge_global(safe * arr.itemsize, m)
        if self.sanitizer is not None:
            self.sanitizer.on_global_read(arr, safe, m)
        out = arr.reshape(-1)[safe]
        return np.where(m, out, np.zeros((), dtype=arr.dtype))

    def global_write(
        self,
        arr: np.ndarray,
        idx: np.ndarray,
        values: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> None:
        """Write ``values`` to ``arr[idx]`` per lane with coalescing cost."""
        if self.fast:
            m = self._combined_mask(mask)
            uniform = m is self._base_mask
            arena = self.arena
            safe = arena.buf("gmem_safe", (self.total_threads,), np.int64)
            if uniform:
                np.copyto(safe, idx, casting="unsafe")
            else:
                safe.fill(0)
                np.copyto(safe, idx, where=m, casting="unsafe")
            addr = arena.buf("gmem_addr", (self.total_threads,), np.int64)
            np.multiply(safe, arr.itemsize, out=addr)
            self._charge_global_fast(addr, m, uniform)
            if self.sanitizer is not None:
                self.sanitizer.on_global_write(arr, safe, m, self)
            flat = arr.reshape(-1)
            if uniform:
                flat[safe] = np.asarray(values) if np.ndim(values) else values
            else:
                flat[safe[m]] = np.asarray(values)[m] if np.ndim(values) else values
            return
        m = self.mask if mask is None else np.logical_and(self.mask, mask)
        safe = np.where(m, idx, 0)
        self._charge_global(safe * arr.itemsize, m)
        if self.sanitizer is not None:
            self.sanitizer.on_global_write(arr, safe, m, self)
        flat = arr.reshape(-1)
        flat[safe[m]] = np.asarray(values)[m] if np.ndim(values) else values

    def charge_global_streamed(
        self,
        elements: float,
        itemsize: int = 8,
        mask: np.ndarray | None = None,
        buffers: str | tuple | None = None,
        indices=None,
        writes: str | tuple | None = None,
    ) -> None:
        """Charge a perfectly coalesced access of ``elements`` per lane.

        Fast path for unit-stride sweeps where building explicit address
        vectors would dominate simulation wall-clock: each warp moves
        ``warp_size * itemsize`` contiguous bytes per element.

        ``buffers`` optionally names the *input* buffer(s) this access
        covers and ``writes`` the output buffer(s) it stores to (names or
        tuples of names from the kernel's parameter namespace).
        ``indices`` upgrades the hint to element precision: a dict mapping
        buffer name to a per-lane flat-index vector, a 2-D
        ``(lanes, width)`` index block (negative entries ignored), or a
        ``(base, width)`` tuple meaning each lane touches
        ``[base[lane], base[lane]+width)``.  All three are pure attribution
        hints for ApproxSan — the cost model ignores them entirely.

        Accounting convention for fractional ``elements`` (an *average*
        per-lane element count): ``mem_cycles`` stay exact — time is
        continuous, so each active warp pays the un-rounded
        ``elements * ceil(warp_size*itemsize/segment) * mem_txn_cycles`` —
        while the discrete event counters (``global_transactions`` and the
        ``dram_bytes`` derived from them) round the per-warp transaction
        count **once**, half-to-even, and reuse that single rounded value
        for both, so transactions and bytes can never disagree.  Integral
        ``elements`` are unaffected.
        """
        if self.fast:
            if self.sanitizer is not None and (buffers or writes):
                m = self._combined_mask(mask)
                self.sanitizer.on_streamed_read(
                    buffers, indices=indices, mask=m, writes=writes)
            active, count = self._active_info(mask)
            txns_per_warp = float(elements) * np.ceil(
                self.warp_size * itemsize / MEMORY_SEGMENT_BYTES
            )
            ntx_warp = int(round(txns_per_warp))
            cyc = txns_per_warp * self.device.mem_txn_cycles
            self._charge_warps_counted(cyc, active, count)
            j = self._journal
            j.append(("mem_cycles", cyc * count))
            j.append(("global_transactions", ntx_warp * count))
            j.append(("dram_bytes", ntx_warp * count * MEMORY_SEGMENT_BYTES))
            j.append(("global_accesses", 1))
            return
        if self.sanitizer is not None and (buffers or writes):
            m = self.mask if mask is None else np.logical_and(self.mask, mask)
            self.sanitizer.on_streamed_read(
                buffers, indices=indices, mask=m, writes=writes)
        active = self._warp_any(mask)
        txns_per_warp = float(elements) * np.ceil(
            self.warp_size * itemsize / MEMORY_SEGMENT_BYTES
        )
        ntx_warp = int(round(txns_per_warp))
        cyc = txns_per_warp * self.device.mem_txn_cycles
        self.charge_warps(cyc, active)
        nwarps = int(active.sum())
        self.counters.mem_cycles += cyc * nwarps
        self.counters.global_transactions += ntx_warp * nwarps
        self.counters.dram_bytes += ntx_warp * nwarps * MEMORY_SEGMENT_BYTES
        self.counters.global_accesses += 1

    # ------------------------------------------------------------------
    # shared memory traffic
    # ------------------------------------------------------------------
    def shared_access(self, n: float = 1.0, mask: np.ndarray | None = None) -> None:
        """Charge ``n`` conflict-free shared-memory accesses per lane."""
        if self.fast:
            active, count = self._active_info(mask)
            cyc = float(n) * self.device.shared_cycles
            self._charge_warps_counted(cyc, active, count)
            j = self._journal
            j.append(("shared_cycles", cyc * count))
            j.append(("shared_accesses", 1))
            return
        active = self._warp_any(mask)
        cyc = float(n) * self.device.shared_cycles
        self.charge_warps(cyc, active)
        self.counters.shared_cycles += cyc * int(active.sum())
        self.counters.shared_accesses += 1

    def shared_table_write(
        self,
        region: str,
        table_ids: np.ndarray,
        mask: np.ndarray | None = None,
        accesses: float = 1.0,
    ) -> None:
        """Insert into warp-shared memo tables: cost of :meth:`shared_access`
        plus ApproxSan's single-writer race check.

        ``table_ids`` gives each lane's target table; ``mask`` selects the
        writing lanes.  Charges exactly ``shared_access(accesses, mask)`` —
        the mediation adds no cycles — but when a sanitizer is attached,
        two active lanes of one warp writing the same table in a single
        phase is reported as a write-write race (HPAC204).  The iACT write
        phase routes through here; its single-writer election stays clean
        by construction.
        """
        self.shared_access(float(accesses), mask)
        if self.sanitizer is not None:
            if self.fast:
                m = self._combined_mask(mask)
            else:
                m = self.mask if mask is None else np.logical_and(self.mask, mask)
            self.sanitizer.on_table_write(region, np.asarray(table_ids), m, self)

    # ------------------------------------------------------------------
    # warp collectives / intrinsics
    # ------------------------------------------------------------------
    def _charge_intrinsic(self, n: float = 1.0, mask: np.ndarray | None = None) -> None:
        if self.fast:
            active, count = self._active_info(mask)
            cyc = float(n) * self.device.intrinsic_cycles
            self._charge_warps_counted(cyc, active, count)
            j = self._journal
            j.append(("intrinsic_cycles", cyc * count))
            j.append(("intrinsics", 1))
            return
        active = self._warp_any(mask)
        cyc = float(n) * self.device.intrinsic_cycles
        self.charge_warps(cyc, active)
        self.counters.intrinsic_cycles += cyc * int(active.sum())
        self.counters.intrinsics += 1

    def _ballot_counts(self, pred: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Fast-path ballot without the per-lane broadcast: per-warp counts
        of active predicate-true lanes (borrowed buffer).  Charges exactly
        like :meth:`ballot`."""
        m = self._combined_mask(mask)
        arena = self.arena
        if (
            m is self._base_mask
            and isinstance(pred, np.ndarray)
            and pred.dtype == np.bool_
        ):
            # AND with the all-true base mask is the identity.
            p = pred
        else:
            p = arena.buf("ballot_pred", (self.total_threads,), np.bool_)
            np.logical_and(pred, m, out=p)
        counts = arena.buf("ballot_counts", (self.num_warps,), np.int64)
        p.reshape(self.num_warps, self.warp_size).sum(axis=1, out=counts)
        self._charge_intrinsic(1.0, mask)
        return counts

    def ballot(self, pred: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """``__ballot_sync`` + ``popc``: per-lane broadcast of the number of
        active lanes in the lane's warp whose predicate is true."""
        if self.fast:
            counts = self._ballot_counts(pred, mask)
            out = self.arena.buf("ballot_lanes", (self.total_threads,), np.int64)
            out.reshape(self.num_warps, self.warp_size)[:] = counts[:, None]
            return out
        m = self.mask if mask is None else np.logical_and(self.mask, mask)
        p = np.logical_and(np.asarray(pred, dtype=bool), m)
        counts = p.reshape(self.num_warps, self.warp_size).sum(axis=1)
        self._charge_intrinsic(1.0, mask)
        return np.repeat(counts, self.warp_size)

    def _warp_counts(self, m: np.ndarray) -> np.ndarray:
        """Per-warp active-lane counts of an already-combined mask
        (borrowed buffer; no cycles charged)."""
        counts = self.arena.buf("warp_counts", (self.num_warps,), np.int64)
        if m is self._base_mask:
            counts.fill(self.warp_size)
        else:
            m.reshape(self.num_warps, self.warp_size).sum(axis=1, out=counts)
        return counts

    def warp_active_count(self, mask: np.ndarray | None = None) -> np.ndarray:
        """Per-lane broadcast of the number of active lanes in its warp."""
        if self.fast:
            m = self._combined_mask(mask)
            counts = self.arena.buf("wac_counts", (self.num_warps,), np.int64)
            if m is self._base_mask:
                counts.fill(self.warp_size)
            else:
                m.reshape(self.num_warps, self.warp_size).sum(axis=1, out=counts)
            out = self.arena.buf("wac_lanes", (self.total_threads,), np.int64)
            out.reshape(self.num_warps, self.warp_size)[:] = counts[:, None]
            return out
        m = self.mask if mask is None else np.logical_and(self.mask, mask)
        counts = m.reshape(self.num_warps, self.warp_size).sum(axis=1)
        return np.repeat(counts, self.warp_size)

    def warp_reduce(
        self, values: np.ndarray, op: str = "sum", mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Butterfly-shuffle warp reduction; result broadcast to all lanes.

        Charges log2(warp_size) shuffle intrinsics, like the shfl.down tree
        a real implementation would use.
        """
        if self.fast:
            m = self._combined_mask(mask)
            arena = self.arena
            if op == "sum":
                ident = 0.0
            elif op == "max":
                ident = -np.inf
            elif op == "min":
                ident = np.inf
            else:
                raise ValueError(f"unknown warp reduction {op!r}")
            if m is self._base_mask:
                grid = np.asarray(values, dtype=np.float64).reshape(
                    self.num_warps, self.warp_size
                )
            else:
                tmp = arena.buf("wred_vals", (self.total_threads,), np.float64)
                tmp.fill(ident)
                np.copyto(tmp, values, where=m)
                grid = tmp.reshape(self.num_warps, self.warp_size)
            red = arena.buf("wred_red", (self.num_warps,), np.float64)
            if op == "sum":
                grid.sum(axis=1, out=red)
            elif op == "max":
                grid.max(axis=1, out=red)
            else:
                grid.min(axis=1, out=red)
            self._charge_intrinsic(float(np.log2(self.warp_size)), mask)
            out = arena.buf("wred_lanes", (self.total_threads,), np.float64)
            out.reshape(self.num_warps, self.warp_size)[:] = red[:, None]
            return out
        m = self.mask if mask is None else np.logical_and(self.mask, mask)
        v = np.asarray(values, dtype=np.float64)
        grid = v.reshape(self.num_warps, self.warp_size)
        act = m.reshape(self.num_warps, self.warp_size)
        if op == "sum":
            red = np.where(act, grid, 0.0).sum(axis=1)
        elif op == "max":
            red = np.where(act, grid, -np.inf).max(axis=1)
        elif op == "min":
            red = np.where(act, grid, np.inf).min(axis=1)
        else:
            raise ValueError(f"unknown warp reduction {op!r}")
        self._charge_intrinsic(float(np.log2(self.warp_size)), mask)
        return np.repeat(red, self.warp_size)

    def warp_argmax(self, values: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Per-lane bool: is this lane its warp's argmax among active lanes?

        Used for iACT's single-writer election (§3.3: the writer is the
        thread with the largest euclidean distance from any table value).
        Ties resolve to the lowest lane id, as a real ballot scan would.
        """
        m = self.mask if mask is None else np.logical_and(self.mask, mask)
        v = np.where(m, np.asarray(values, dtype=np.float64), -np.inf)
        grid = v.reshape(self.num_warps, self.warp_size)
        win = np.argmax(grid, axis=1)
        out = np.zeros((self.num_warps, self.warp_size), dtype=bool)
        rows = np.arange(self.num_warps)
        has_active = m.reshape(self.num_warps, self.warp_size).any(axis=1)
        out[rows[has_active], win[has_active]] = True
        self._charge_intrinsic(float(np.log2(self.warp_size)), mask)
        return out.reshape(-1)

    # ------------------------------------------------------------------
    # block-level operations
    # ------------------------------------------------------------------
    def barrier(self, mask: np.ndarray | None = None) -> None:
        """Block barrier with deadlock detection.

        Raises :class:`SimulatedDeadlockError` when, inside any block, some
        threads reach the barrier while others were masked off by divergent
        control flow — the hang scenario of §3.1.2.
        """
        if self.fast:
            m = self._combined_mask(mask)
            if m is self._base_mask:
                active, count = self._uniform_active, self.num_warps
            else:
                per_block = m.reshape(self.num_blocks, self.threads_per_block)
                arena = self.arena
                some = arena.buf("bar_some", (self.num_blocks,), np.bool_)
                per_block.any(axis=1, out=some)
                diverged = arena.buf("bar_div", (self.num_blocks,), np.bool_)
                per_block.all(axis=1, out=diverged)
                np.logical_not(diverged, out=diverged)
                np.logical_and(some, diverged, out=diverged)
                if diverged.any():
                    bad = int(np.argmax(diverged))
                    raise SimulatedDeadlockError(
                        f"barrier reached under divergent control flow in block {bad}: "
                        f"{int(per_block[bad].sum())}/{self.threads_per_block} threads arrived"
                    )
                active, count = self._active_info(mask)
            cyc = self.device.barrier_cycles
            self._charge_warps_counted(cyc, active, count)
            j = self._journal
            j.append(("barrier_cycles", cyc * count))
            j.append(("barriers", 1))
            if self.sanitizer is not None:
                self.sanitizer.on_barrier()
            return
        m = self.mask if mask is None else np.logical_and(self.mask, mask)
        per_block = m.reshape(self.num_blocks, self.threads_per_block)
        some = per_block.any(axis=1)
        all_ = per_block.all(axis=1)
        divergent = np.logical_and(some, np.logical_not(all_))
        if divergent.any():
            bad = int(np.argmax(divergent))
            raise SimulatedDeadlockError(
                f"barrier reached under divergent control flow in block {bad}: "
                f"{int(per_block[bad].sum())}/{self.threads_per_block} threads arrived"
            )
        active = self._warp_any(mask)
        cyc = self.device.barrier_cycles
        self.charge_warps(cyc, active)
        self.counters.barrier_cycles += cyc * int(active.sum())
        self.counters.barriers += 1
        if self.sanitizer is not None:
            # Synchronizing boundary: the race detector opens a new epoch.
            self.sanitizer.on_barrier()

    def atomic_shared(self, n: float = 1.0, mask: np.ndarray | None = None) -> None:
        """Charge ``n`` shared-memory atomic ops (one per active warp)."""
        if self.fast:
            active, count = self._active_info(mask)
            cyc = float(n) * self.device.atomic_cycles
            self._charge_warps_counted(cyc, active, count)
            j = self._journal
            j.append(("atomic_cycles", cyc * count))
            j.append(("atomics", 1))
            return
        active = self._warp_any(mask)
        cyc = float(n) * self.device.atomic_cycles
        self.charge_warps(cyc, active)
        self.counters.atomic_cycles += cyc * int(active.sum())
        self.counters.atomics += 1

    def _block_counts(self, pred: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Fast-path :meth:`block_count` without the per-lane broadcast:
        per-block counts (borrowed buffer), charging the identical §3.3
        sequence (ballot+popc, leader atomic, full barrier, readback)."""
        m = self._combined_mask(mask)
        arena = self.arena
        p = arena.buf("bc_pred", (self.total_threads,), np.bool_)
        np.logical_and(pred, m, out=p)
        per_block = arena.buf("bc_counts", (self.num_blocks,), np.int64)
        p.reshape(self.num_blocks, self.threads_per_block).sum(axis=1, out=per_block)
        self._charge_intrinsic(1.0, mask)  # ballot + popc
        self.atomic_shared(1.0, mask)  # leader atomicAdd
        # The barrier is block-wide: ``mask`` selects who *votes*, not who
        # reaches the synchronization point — every converged thread of the
        # block arrives (a ragged tail still synchronizes on real hardware).
        self.barrier()
        self.shared_access(1.0, mask)  # read back the total
        return per_block

    def block_count(self, pred: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Count predicate-true threads per block, broadcast per lane.

        Models the §3.3 block-decision sequence: per-warp ballot+popc, the
        first lane of each warp atomically adding into shared memory, a
        barrier, then every thread reading the total.
        """
        if self.fast:
            per_block = self._block_counts(pred, mask)
            out = self.arena.buf("bc_lanes", (self.total_threads,), np.int64)
            out.reshape(self.num_blocks, self.threads_per_block)[:] = per_block[:, None]
            return out
        m = self.mask if mask is None else np.logical_and(self.mask, mask)
        p = np.logical_and(np.asarray(pred, dtype=bool), m)
        per_block = p.reshape(self.num_blocks, self.threads_per_block).sum(axis=1)
        self._charge_intrinsic(1.0, mask)  # ballot + popc
        self.atomic_shared(1.0, mask)  # leader atomicAdd
        # The barrier is block-wide: ``mask`` selects who *votes*, not who
        # reaches the synchronization point — every converged thread of the
        # block arrives (a ragged tail still synchronizes on real hardware).
        self.barrier()
        self.shared_access(1.0, mask)  # read back the total
        return np.repeat(per_block, self.threads_per_block)

    def _block_active_counts(self, m: np.ndarray) -> np.ndarray:
        """Per-block active-lane counts of an already-combined mask
        (borrowed buffer; no cost)."""
        counts = self.arena.buf("bact_counts", (self.num_blocks,), np.int64)
        if m is self._base_mask:
            counts.fill(self.threads_per_block)
        else:
            m.reshape(self.num_blocks, self.threads_per_block).sum(axis=1, out=counts)
        return counts

    def block_active_count(self, mask: np.ndarray | None = None) -> np.ndarray:
        """Active threads per block (no cost — a compile-time constant)."""
        if self.fast:
            m = self._combined_mask(mask)
            counts = self._block_active_counts(m)
            out = self.arena.buf("bac_lanes", (self.total_threads,), np.int64)
            out.reshape(self.num_blocks, self.threads_per_block)[:] = counts[:, None]
            return out
        m = self.mask if mask is None else np.logical_and(self.mask, mask)
        counts = m.reshape(self.num_blocks, self.threads_per_block).sum(axis=1)
        return np.repeat(counts, self.threads_per_block)

    # ------------------------------------------------------------------
    # loop scheduling
    # ------------------------------------------------------------------
    def grid_stride(self, n: int, start: int = 0):
        """Iterate a ``parallel for`` of ``n`` iterations grid-stride style.

        Iterates indices ``range(start, n)``.  Yields ``(step, idx, mask)``
        where ``idx`` is the loop index each lane handles this step and
        ``mask`` marks lanes with a live index.  This is the OpenMP-offload
        distribution the paper's TAF algorithm is built around (§3.1.3 /
        Fig 4d): successive steps of one thread are ``stride`` apart, giving
        temporal — not spatial — output locality.
        """
        n = int(n)
        start = int(start)
        stride = self.total_threads
        step = 0
        base = start + self.thread_id
        while start + step * stride < n:
            idx = base + step * stride
            if self.fast and len(self._mask_stack) == 1:
                # Full steps (every lane live) yield the base mask object,
                # which downstream charging recognizes by identity.
                if start + (step + 1) * stride <= n:
                    yield step, idx, self._base_mask
                else:
                    yield step, idx, idx < n
            else:
                live = idx < n
                yield step, idx, np.logical_and(self.mask, live)
            step += 1

    def block_stride(self, n: int):
        """Iterate ``n`` work items distributed one per *block* per step.

        Yields ``(step, item, mask)`` where ``item`` is the per-lane item id
        (same for every thread of a block).  Models kernels where an entire
        block cooperates on one item, like Binomial Options (§4.1).
        """
        n = int(n)
        step = 0
        while step * self.num_blocks < n:
            item = self.block_id + step * self.num_blocks
            if self.fast and len(self._mask_stack) == 1:
                if (step + 1) * self.num_blocks <= n:
                    yield step, item, self._base_mask
                else:
                    yield step, item, item < n
            else:
                live = item < n
                yield step, item, np.logical_and(self.mask, live)
            step += 1

    def team_chunk_stride(self, n: int):
        """OpenMP ``teams distribute parallel for`` scheduling.

        ``distribute`` hands each team a *contiguous chunk* of the
        iteration space; the ``parallel for`` inside walks the chunk
        cyclically with stride ``threads_per_block`` (Clang's
        ``schedule(static,1)`` on GPUs), so adjacent lanes touch adjacent
        iterations — coalesced — and a thread's successive iterations are
        ``threads_per_block`` apart regardless of the team count.  That
        fixed stride is the temporal-locality granularity HPAC-Offload's
        TAF sees (§3.1.3).

        Yields ``(step, idx, mask)`` like :meth:`grid_stride`.
        """
        n = int(n)
        chunk = (n + self.num_blocks - 1) // self.num_blocks
        base = self.block_id * chunk + self.lane_in_block
        step = 0
        while step * self.threads_per_block < chunk:
            idx = base + step * self.threads_per_block
            if self.fast and len(self._mask_stack) == 1:
                # Full step: the last lane of the last block stays in its
                # chunk and inside the iteration space.
                if (step + 1) * self.threads_per_block <= chunk and (
                    (self.num_blocks - 1) * chunk
                    + (step + 1) * self.threads_per_block
                    <= n
                ):
                    yield step, idx, self._base_mask
                else:
                    offset = self.lane_in_block + step * self.threads_per_block
                    yield step, idx, np.logical_and(offset < chunk, idx < n)
            else:
                offset = self.lane_in_block + step * self.threads_per_block
                live = np.logical_and(offset < chunk, idx < n)
                yield step, idx, np.logical_and(self.mask, live)
            step += 1

    def block_chunk_stride(self, n: int):
        """``distribute`` for block-cooperative items: contiguous per block.

        Each block processes a contiguous run of items (one at a time, all
        threads cooperating), so a block's successive items are *adjacent* —
        the locality granularity for block-level TAF (Binomial Options).
        Yields ``(step, item, mask)``.
        """
        n = int(n)
        chunk = (n + self.num_blocks - 1) // self.num_blocks
        step = 0
        while step < chunk:
            item = self.block_id * chunk + step
            if self.fast and len(self._mask_stack) == 1:
                if (self.num_blocks - 1) * chunk + step < n:
                    yield step, item, self._base_mask
                else:
                    yield step, item, item < n
            else:
                live = item < n
                yield step, item, np.logical_and(self.mask, live)
            step += 1
