"""Command-line interface: ``python -m repro <command>``.

Thin rendering wrappers over the stable :mod:`repro.api` facade — each
subcommand builds a :class:`~repro.harness.config.SweepConfig` from its
flags, calls the matching ``repro.api`` function, and prints the result,
so anything the CLI can do a script can do with the same one call:

* ``python -m repro run <app> [--device D] [--technique T ...]`` — run one
  benchmark (accurate, or with one technique applied) and print
  speedup/error against the accurate baseline;
* ``python -m repro sweep <app> --technique T [--effort quick|full]
  [--parallel N] [--checkpoint F]`` — a DSE campaign with the results
  database, saved to JSONL; ``--parallel`` fans points across a process
  pool and ``--checkpoint`` makes the sweep resumable;
* ``python -m repro search <app> --technique T [--strategy
  random|evolutionary] [--budget N] [--parallel N]`` — budgeted smart
  search (§4.2) instead of the exhaustive grid; the evolutionary strategy
  streams results and proposes offspring as evaluations land;
* ``python -m repro lint [files | --text "..." | --app A --device D]`` —
  static analysis of approx pragmas / region configurations, clang-style
  caret diagnostics with stable ``HPAC0xx`` codes; exit status reflects the
  worst severity (0 clean/info, 1 warnings, 2 errors);
* ``python -m repro sanitize [--app A|all] [--device D]`` — run apps under
  ApproxSan (shadow-memory sanitizer + cross-warp race detector) and report
  ``HPAC2xx`` contract violations; exit status is the worst severity;
  ``--infer [--write]`` instead records one accurate run per app and emits
  ready-to-paste ``in(...)/out(...)`` contract text, round-trip verified;
* ``python -m repro sensitivity <app>`` — rank the app's regions;
* ``python -m repro figures [fig3 fig4 ...] [--parallel N]`` — regenerate
  evaluation figures and print the paper-style rows; all requested figures
  share one batch engine (``--parallel`` fans their simulation grids
  across a process pool, and overlapping grids evaluate once);
* ``python -m repro campaign split|work|merge|status <dir>`` — the
  distributed campaign fabric: partition a sweep's point space into shard
  jobs, have any number of worker sessions claim them under leases with
  heartbeats (dead workers' shards are reclaimed after the TTL), and
  merge the shard files back into one checkpoint byte-identical to a
  serial sweep;
* ``python -m repro checkpoint compact <file>`` — dedupe a checkpoint's
  re-run labels, keeping the latest record per point;
* ``python -m repro devices`` — list the device presets.

Each subcommand builds the matching frozen request object
(:class:`repro.api.SweepRequest`, :class:`repro.api.SearchRequest`,
:class:`repro.api.CampaignSpec`, ...), hands it to :func:`repro.api.execute`
(or the campaign facade), and renders the typed result — ``--json``
prints ``result.render_json()`` and the process exits ``result.exit_code``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_technique_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--technique", default="none",
                   choices=["none", "taf", "iact", "perfo", "noise"])
    p.add_argument("--level", default="thread", choices=["thread", "warp", "team"])
    p.add_argument("--items-per-thread", type=int, default=None)
    # TAF
    p.add_argument("--hsize", type=int, default=2)
    p.add_argument("--psize", type=int, default=8)
    p.add_argument("--threshold", type=float, default=0.3)
    # iACT
    p.add_argument("--tsize", type=int, default=4)
    p.add_argument("--tperwarp", type=int, default=None)
    # perforation
    p.add_argument("--kind", default="small",
                   choices=["small", "large", "ini", "fini"])
    p.add_argument("--skip", type=int, default=4)
    p.add_argument("--skip-percent", type=float, default=50.0)
    p.add_argument("--herded", action="store_true")
    # noise
    p.add_argument("--rel-sigma", type=float, default=0.05)
    p.add_argument("--site", default=None)


def _technique_kwargs(args) -> dict:
    t = args.technique
    if t == "taf":
        return dict(hsize=args.hsize, psize=args.psize, threshold=args.threshold)
    if t == "iact":
        return dict(tsize=args.tsize, threshold=args.threshold,
                    tperwarp=args.tperwarp)
    if t == "perfo":
        kw = dict(kind=args.kind, herded=args.herded)
        if args.kind in ("small", "large"):
            kw["skip"] = args.skip
        else:
            kw["skip_percent"] = args.skip_percent
            kw.pop("herded")
        return kw
    if t == "noise":
        return dict(rel_sigma=args.rel_sigma)
    return {}


def cmd_run(args) -> int:
    from repro import api
    from repro.apps import get_benchmark
    from repro.harness.runner import ExperimentRunner

    app = get_benchmark(args.app)
    ipt = args.items_per_thread or app.baseline_items_per_thread or 1
    runner = ExperimentRunner(seed=args.seed)
    baseline = runner.baseline(args.app, args.device)
    print(f"{args.app} on {args.device}: accurate "
          f"{baseline.seconds * 1e3:.3f} ms end-to-end "
          f"({baseline.kernel_seconds * 1e3:.3f} ms kernels)")
    if args.technique == "none":
        return 0
    request = api.PointRequest(
        app=args.app, device=args.device,
        technique=args.technique, params=_technique_kwargs(args),
        level=args.level, items_per_thread=ipt, site=args.site,
        seed=args.seed,
    )
    res = api.run_point(request=request, runner=runner)
    if not res.feasible:
        print(f"{args.technique}: infeasible — {res.note}")
        return 1
    label = "kernel" if app.kernel_only else "end-to-end"
    fracs = {n: s["approx_fraction"] for n, s in res.region_stats.items()}
    print(f"{args.technique}: {res.reported_speedup:.3f}x {label} speedup, "
          f"{app.error_metric.upper()} {res.error_percent:.4f}%, "
          f"approximated {fracs}")
    return 0


def cmd_sweep(args) -> int:
    from repro import api
    from repro.harness.config import SweepConfig
    from repro.harness.database import ResultsDB
    from repro.harness.reporting import format_record, format_records_table

    request = api.SweepRequest(
        app=args.app, device=args.device, technique=args.technique,
        effort=args.effort, seed=args.seed,
    )
    if not request.resolve_points():
        print(f"no candidate grid for {args.app}/{args.technique}",
              file=sys.stderr)
        return 1
    vcache = None
    if args.variant_cache:
        from repro.harness.pruning import VariantCache

        vcache = VariantCache(args.variant_cache)
    config = SweepConfig(
        workers=max(1, args.parallel), chunk_size=args.chunk_size,
        checkpoint=args.checkpoint, retries=args.retries,
        progress=args.progress, preflight=args.preflight,
        # --prune takes the QoI bound from --max-error (the same budget the
        # "best under" selection below uses).
        prune=(float(args.max_error) if args.prune else False),
        order=args.order, variant_cache=vcache,
    )
    report = api.execute(request, config=config)
    if vcache is not None:
        vcache.save()
    db = ResultsDB()
    db.add(report.records)
    if (args.parallel > 1 or args.checkpoint or args.preflight
            or args.prune or args.variant_cache):
        lattice = report.extra.get("lattice_pruned", 0)
        vhits = report.extra.get("variant_hits", 0)
        print(f"evaluated {report.evaluated} points "
              f"({report.skipped} resumed from checkpoint, "
              f"{report.pruned} pruned by preflight, "
              f"{lattice} pruned by the lattice, "
              f"{vhits} variant-cache hit(s)) "
              f"in {report.elapsed:.2f}s with {args.parallel} worker(s)")
    print(format_records_table(db.query(feasible=None),
                               title=f"{args.app} {args.technique} on {args.device}"))
    best = db.best_speedup(max_error=args.max_error)
    print("\nbest under "
          f"{100 * args.max_error:.0f}% error: "
          + (format_record(best) if best else "none"))
    if args.output:
        db.save(args.output)
        print(f"saved {len(db)} records to {args.output}")
    return 0


def cmd_search(args) -> int:
    from repro import api
    from repro.harness.config import SweepConfig
    from repro.harness.reporting import format_record, format_records_table

    request = api.SearchRequest(
        app=args.app, device=args.device,
        technique=args.technique, strategy=args.strategy,
        budget=args.budget, max_error=args.max_error,
        population=args.population, seed=args.seed,
    )
    result = api.execute(
        request,
        config=SweepConfig(workers=max(1, args.parallel), order=args.order),
    )
    print(format_records_table(
        result.db.query(feasible=None),
        title=(f"{args.strategy} search: {args.app} {args.technique} "
               f"on {args.device} ({result.evaluations} evaluations)"),
    ))
    print("\nbest under "
          f"{100 * args.max_error:.0f}% error: "
          + (format_record(result.best) if result.best else "none"))
    if args.output:
        result.db.save(args.output)
        print(f"saved {len(result.db)} records to {args.output}")
    return 0


def cmd_lint(args) -> int:
    from repro import api
    from repro.analysis import render_all, render_json

    if not args.text and not args.files and not args.app:
        print("nothing to lint: pass files, --text, or --app", file=sys.stderr)
        return 2
    result = api.lint(
        args.files, text=args.text, app=args.app, device=args.device,
        technique=args.technique, params=_technique_kwargs(args),
        level=args.level, site=args.site, threads=args.threads,
    )
    if args.json:
        print(render_json(result.diagnostics))
        return result.exit_code
    out = render_all(result.diagnostics)
    if out:
        print(out)
    else:
        print("no issues found")
    return result.exit_code


def cmd_sanitize(args) -> int:
    """Run apps under ApproxSan and render the violation reports."""
    from repro import api
    from repro.analysis import render_all

    if args.infer:
        return _cmd_sanitize_infer(args)
    result = api.sanitize(
        args.app, args.device,
        technique=args.technique, params=_technique_kwargs(args),
        level=args.level, site=args.site,
        items_per_thread=args.items_per_thread, seed=args.seed,
    )
    if args.json:
        # One pure JSON document with stable key order — pipeable to jq.
        print(result.render_json())
        return result.exit_code
    for r in result.reports:
        print(f"== {r.app} on {r.device} ({r.technique}) ==")
        if r.infeasible is not None:
            # Infeasible configuration (shared-memory overflow, unsupported
            # technique, ...): nothing to sanitize — report and move on, the
            # same way the sweep harness records these as infeasible rows.
            print(f"   infeasible: {r.infeasible}")
            if r.static:
                print(render_all(r.static))
            continue
        c = r.report.counters
        print(f"   {c['launches']} launch(es), "
              f"{c['region_invocations']} region invocation(s), "
              f"{c['reads_checked'] + c['writes_checked']} mediated "
              f"access(es), {c['streamed_hints']} streamed hint(s), "
              f"{c['shadowed_bytes']} shadow byte(s)")
        diags = r.diagnostics
        if diags:
            print(render_all(diags))
        else:
            print("   ApproxSan: no contract violations")
    return result.exit_code


def _cmd_sanitize_infer(args) -> int:
    """`sanitize --infer`: record an accurate run, emit the pragma text."""
    from repro import api
    from repro.analysis import render_all

    result = api.infer_contracts(
        args.app, args.device,
        items_per_thread=args.items_per_thread, seed=args.seed,
        seeds=args.seeds, write=args.write,
    )
    if args.json:
        print(result.render_json())
        return result.exit_code
    for inf in result.inferences:
        print(f"== {inf.app} on {inf.device} (accurate, recorded) ==")
        if len(inf.seeds) > 1:
            print(f"   union of {len(inf.seeds)} accurate runs "
                  f"(seeds {inf.seeds})")
        for reg in inf.regions:
            print(f"   region {reg.region!r}:")
            print(f"      declared: {reg.declared or '(none)'}")
            print(f"      inferred: {reg.inferred or '(none)'}")
            for note in reg.notes:
                print(f"      note: {note}")
        if inf.roundtrip is not None:
            rt = inf.roundtrip
            verdict = "clean" if rt["clean"] else "FAILED"
            print(f"   round-trip: {verdict} "
                  f"(parse errors: {len(rt['parse_errors'])}, "
                  f"lint: {len(rt['lint'])}, "
                  f"violations: {rt['violations_by_code'] or '{}'})")
            if rt.get("dirty_seeds"):
                print(f"   dirty under seed(s): {rt['dirty_seeds']}")
        if inf.narrower:
            print(render_all(inf.narrower))
        path = result.written.get(inf.app)
        if path:
            print(f"   baseline written: {path}")
    n = len(result.narrower)
    if n:
        print(f"{n} declared contract(s) narrower than the recorded run "
              f"(HPAC212)")
    return result.exit_code


def cmd_sensitivity(args) -> int:
    from repro.apps import get_benchmark
    from repro.harness.sensitivity import analyze_sensitivity, format_sensitivity

    app = get_benchmark(args.app)
    reports = analyze_sensitivity(app, device=args.device,
                                  rel_sigma=args.rel_sigma, seed=args.seed)
    print(format_sensitivity(reports))
    return 0


def cmd_figures(args) -> int:
    from repro import api
    from repro.harness import figures as F
    from repro.harness.reporting import format_engine_stats, format_fig6

    # One engine across every requested figure: shared baselines, one
    # process pool, and overlapping grids (Fig 6 / Fig 7 share LULESH
    # points) evaluate once.
    request = api.FiguresRequest(
        names=tuple(args.names or ()), parallel=args.parallel, seed=args.seed
    )
    out = api.execute(request)
    for name, r in out.results.items():
        if name == "fig3":
            print(f"Fig 3: V100 exhausted at 2^{r.exhaust_threads.bit_length() - 1} threads")
        elif name == "fig4":
            print(f"Fig 4: serialized-GPU TAF {r.serialized_slowdown:.0f}x slower "
                  f"than HPAC-Offload TAF")
        elif name == "fig6":
            print(format_fig6(r, F.FIG6_APPS, ["nvidia", "amd"]))
        else:
            print(f"{name}: regenerated (see benchmarks/ for the asserted rows)")
    if out.stats.submitted:
        print(format_engine_stats(out.stats))
    return 0


def cmd_campaign(args) -> int:
    """Distributed campaign fabric: split / work / merge / status."""
    from repro import api

    if args.action == "split":
        spec = api.CampaignSpec(
            app=args.app, device=args.device, technique=args.technique,
            effort=args.effort, site=args.site, seed=args.seed,
        )
        result = api.campaign_split(args.dir, spec, shards=args.shards)
        if args.json:
            print(result.render_json())
            return result.exit_code
        print(f"{args.dir}: split {result.points} point(s) into "
              f"{result.shards} shard job(s) "
              f"(spec {result.spec_hash[:12]}…)")
        print("run workers with: python -m repro campaign work "
              f"{args.dir} --owner <name>")
        return result.exit_code
    if args.action == "work":
        result = api.campaign_work(
            args.dir, args.owner, ttl=args.ttl, max_jobs=args.max_jobs
        )
        if args.json:
            print(result.render_json())
            return result.exit_code
        print(f"{args.owner}: completed {result.jobs_done} job(s) — "
              f"{result.evaluated} point(s) evaluated, "
              f"{result.reemitted} re-emitted from a dead worker, "
              f"{result.leases_lost} lease(s) lost")
        return result.exit_code
    if args.action == "merge":
        result = api.campaign_merge(
            args.dir, args.output, strict=not args.partial
        )
        if args.json:
            print(result.render_json())
            return result.exit_code
        s = result.stats
        print(f"{result.output}: merged {result.merged} record(s) from "
              f"{len(result.shards_merged)} shard(s) "
              f"({s.identical} identical duplicate(s), "
              f"{s.conflicts} conflict(s), "
              f"{result.rejected_stale} stale fenced-out record(s))")
        if result.shards_skipped:
            print(f"partial merge: {len(result.shards_skipped)} "
                  f"unfinished shard(s) skipped, "
                  f"{len(result.missing)} label(s) uncovered")
        return result.exit_code
    if args.action == "status":
        result = api.campaign_status(args.dir)
        if args.json:
            print(result.render_json())
            return result.exit_code
        p = result.progress
        print(f"{args.dir} (spec {result.spec_hash[:12]}…): "
              f"{p['done']} done / {p['leased']} leased / "
              f"{p['expired']} expired / {p['pending']} pending "
              f"shard(s); {p['records']}/{p['total_points']} record(s)")
        for job, entry in sorted(result.shards.items()):
            state = result.lease_table.get(job, {})
            line = (f"  {job}: {state.get('state', '?'):<8} "
                    f"{entry['points']} point(s)")
            if state.get("reclaims"):
                line += f", reclaimed {state['reclaims']}x"
            lease = state.get("lease")
            if lease:
                line += f", held by {lease['owner']} (fence {lease['fence']})"
            print(line)
        return result.exit_code
    print(f"unknown campaign action {args.action!r}", file=sys.stderr)
    return 2


def cmd_checkpoint(args) -> int:
    from repro.harness.database import compact_checkpoint

    if args.action == "compact":
        kept, dropped = compact_checkpoint(args.file, output=args.output)
        dest = args.output or args.file
        print(f"{dest}: kept {kept} record(s), dropped {dropped} stale "
              f"duplicate(s)")
        return 0
    print(f"unknown checkpoint action {args.action!r}", file=sys.stderr)
    return 2


def cmd_devices(args) -> int:
    from repro.gpusim.device import amd_mi250x, nvidia_v100

    for dev in (nvidia_v100(), amd_mi250x(), nvidia_v100(0.1), amd_mi250x(0.1)):
        print(f"{dev.name:<32} {dev.num_sms:4d} SMs × {dev.warp_size}-wide, "
              f"{dev.mem_bandwidth / 1e9:7.0f} GB/s, "
              f"{dev.shared_mem_per_block // 1024} KB shared/block")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="HPAC-Offload reproduction CLI",
    )
    parser.add_argument("--seed", type=int, default=2023)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one benchmark")
    p_run.add_argument("app")
    p_run.add_argument("--device", default="v100_small")
    _add_technique_args(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_sweep = sub.add_parser("sweep", help="DSE campaign over a candidate grid")
    p_sweep.add_argument("app")
    p_sweep.add_argument("--device", default="v100_small")
    p_sweep.add_argument("--technique", required=True,
                         choices=["taf", "iact", "perfo"])
    p_sweep.add_argument("--effort", default="quick",
                         choices=["quick", "full", "paper"])
    p_sweep.add_argument("--max-error", type=float, default=0.10)
    p_sweep.add_argument("--output", default=None)
    p_sweep.add_argument("--parallel", type=int, default=1,
                         help="process-pool workers (1 = in-process)")
    p_sweep.add_argument("--checkpoint", default=None,
                         help="JSONL checkpoint to stream records into and "
                              "resume from (skips recorded points)")
    p_sweep.add_argument("--retries", type=int, default=1,
                         help="retries per point on unexpected worker errors")
    p_sweep.add_argument("--chunk-size", type=int, default=None,
                         help="pin points per worker chunk (default: sized "
                              "adaptively from observed throughput)")
    p_sweep.add_argument("--progress", action="store_true",
                         help="print a throughput/ETA line per completed chunk")
    p_sweep.add_argument("--preflight", action="store_true",
                         help="statically vet points first; provably "
                              "infeasible ones are recorded (with the HPAC "
                              "diagnostic code) without simulating")
    p_sweep.add_argument("--prune", action="store_true",
                         help="subsumption-lattice pruning: once a point's "
                              "error exceeds --max-error, its un-evaluated "
                              "more-aggressive descendants are recorded as "
                              "'pruned' rows (naming the ancestor) without "
                              "simulating")
    p_sweep.add_argument("--order", action="store_true",
                         help="surrogate-order the frontier: likely-Pareto "
                              "and likely-pruning-root points evaluate "
                              "first (result set unchanged)")
    p_sweep.add_argument("--variant-cache", default=None, metavar="FILE",
                         help="JSONL content-hash record cache shared "
                              "across campaigns; identical configurations "
                              "are served without re-simulating")
    p_sweep.set_defaults(fn=cmd_sweep)

    p_search = sub.add_parser(
        "search", help="budgeted smart search over the Table-2 grid (§4.2)"
    )
    p_search.add_argument("app")
    p_search.add_argument("--device", default="v100_small")
    p_search.add_argument("--technique", required=True,
                          choices=["taf", "iact", "perfo"])
    p_search.add_argument("--strategy", default="random",
                          choices=["random", "evolutionary"],
                          help="random sampling, or steady-state (μ+λ) "
                               "evolution fed as results stream in")
    p_search.add_argument("--budget", type=int, default=20,
                          help="total evaluations")
    p_search.add_argument("--population", type=int, default=3,
                          help="elite size / in-flight evaluations "
                               "(evolutionary)")
    p_search.add_argument("--max-error", type=float, default=0.10)
    p_search.add_argument("--parallel", type=int, default=1,
                          help="process-pool workers (results identical "
                               "at any worker count)")
    p_search.add_argument("--order", action="store_true",
                          help="surrogate-guided: order/choose candidates "
                               "by predicted error and speedup (see "
                               "repro.harness.pruning)")
    p_search.add_argument("--output", default=None)
    p_search.set_defaults(fn=cmd_search)

    p_lint = sub.add_parser("lint", help="static analysis of approx pragmas")
    p_lint.add_argument("files", nargs="*",
                        help=".pragmas files (one directive per line, "
                             "// comments)")
    p_lint.add_argument("--text", default=None,
                        help="lint one directive string")
    p_lint.add_argument("--app", default=None,
                        help="lint an app's region specs on --device "
                             "(combine with the technique flags)")
    p_lint.add_argument("--device", default="v100_small")
    p_lint.add_argument("--threads", type=int, default=None,
                        help="threads per block (default: the app's "
                             "num_threads, warp-rounded)")
    p_lint.add_argument("--json", action="store_true",
                        help="emit diagnostics as a JSON array (code, "
                             "severity, file, span, message, fixits)")
    _add_technique_args(p_lint)
    p_lint.set_defaults(fn=cmd_lint)

    p_san = sub.add_parser(
        "sanitize",
        help="run apps under ApproxSan, cross-checking kernels against "
             "their pragma contracts",
    )
    p_san.add_argument("--app", default="all",
                       help="benchmark name, or 'all' (default)")
    p_san.add_argument("--device", default="v100_small")
    p_san.add_argument("--json", action="store_true",
                       help="emit the per-app reports as one JSON document "
                            "(stable key order)")
    p_san.add_argument("--infer", action="store_true",
                       help="record one accurate run per app and emit "
                            "ready-to-paste in(...)/out(...) contract text, "
                            "round-trip verified")
    p_san.add_argument("--seeds", type=int, default=None, metavar="N",
                       help="with --infer: union the access sets of N "
                            "accurate runs (seeds --seed .. --seed+N-1) "
                            "before collapsing, hardening data-dependent "
                            "footprints against single-seed luck")
    p_san.add_argument("--write", action="store_true",
                       help="with --infer: store the inferred baselines "
                            "under baselines/approxsan/ (enables the "
                            "static HPAC212 check)")
    _add_technique_args(p_san)
    p_san.set_defaults(fn=cmd_sanitize)

    p_sens = sub.add_parser("sensitivity", help="rank regions by sensitivity")
    p_sens.add_argument("app")
    p_sens.add_argument("--device", default="v100_small")
    p_sens.add_argument("--rel-sigma", type=float, default=0.05)
    p_sens.set_defaults(fn=cmd_sensitivity)

    p_fig = sub.add_parser("figures", help="regenerate evaluation figures")
    p_fig.add_argument("names", nargs="*",
                       help="fig3 fig4 fig6 fig7 fig8 fig9 fig10 fig11 fig12")
    p_fig.add_argument("--parallel", type=int, default=1,
                       help="process-pool workers for the simulation grids "
                            "(1 = in-process; figures share one batch "
                            "engine either way)")
    p_fig.set_defaults(fn=cmd_figures)

    p_camp = sub.add_parser(
        "campaign",
        help="distributed campaign fabric: split a sweep into shard jobs, "
             "work them from any number of machines under leases, merge "
             "the shards back byte-identically",
    )
    camp_sub = p_camp.add_subparsers(dest="action", required=True)

    pc_split = camp_sub.add_parser(
        "split", help="partition a sweep's point space into shard jobs"
    )
    pc_split.add_argument("dir", help="campaign directory (created)")
    pc_split.add_argument("--app", required=True)
    pc_split.add_argument("--device", default="v100_small")
    pc_split.add_argument("--technique", required=True,
                          choices=["taf", "iact", "perfo"])
    pc_split.add_argument("--effort", default="quick",
                          choices=["quick", "full", "paper"])
    pc_split.add_argument("--shards", type=int, default=2,
                          help="shard jobs to partition the grid into")
    pc_split.add_argument("--site", default=None)
    pc_split.add_argument("--json", action="store_true")
    pc_split.set_defaults(fn=cmd_campaign)

    pc_work = camp_sub.add_parser(
        "work", help="claim and evaluate shard jobs until the queue drains"
    )
    pc_work.add_argument("dir", help="campaign directory")
    pc_work.add_argument("--owner", required=True,
                         help="worker identity recorded in leases and "
                              "record tags")
    pc_work.add_argument("--ttl", type=float, default=None,
                         help="lease TTL in seconds: how long this "
                              "worker's silence is trusted before its "
                              "shard is reclaimed (default 60)")
    pc_work.add_argument("--max-jobs", type=int, default=None,
                         help="stop after completing N shard jobs")
    pc_work.add_argument("--json", action="store_true")
    pc_work.set_defaults(fn=cmd_campaign)

    pc_merge = camp_sub.add_parser(
        "merge", help="fold shard files into one canonical checkpoint "
                      "(byte-identical to a serial sweep)"
    )
    pc_merge.add_argument("dir", help="campaign directory")
    pc_merge.add_argument("--output", default=None,
                          help="merged JSONL (default: DIR/merged.jsonl)")
    pc_merge.add_argument("--partial", action="store_true",
                          help="merge completed shards even while others "
                               "are unfinished (exit 1 when incomplete)")
    pc_merge.add_argument("--json", action="store_true")
    pc_merge.set_defaults(fn=cmd_campaign)

    pc_status = camp_sub.add_parser(
        "status", help="shard states, leases, and progress from the ledger"
    )
    pc_status.add_argument("dir", help="campaign directory")
    pc_status.add_argument("--json", action="store_true")
    pc_status.set_defaults(fn=cmd_campaign)

    p_ckpt = sub.add_parser("checkpoint", help="checkpoint file maintenance")
    p_ckpt.add_argument("action", choices=["compact"],
                        help="compact: drop stale duplicate labels, keeping "
                             "the latest record per (app, device, point)")
    p_ckpt.add_argument("file", help="JSONL / .jsonl.gz checkpoint")
    p_ckpt.add_argument("--output", default=None,
                        help="write here instead of replacing FILE in place "
                             "(a .gz suffix also converts the compression)")
    p_ckpt.set_defaults(fn=cmd_checkpoint)

    p_dev = sub.add_parser("devices", help="list device presets")
    p_dev.set_defaults(fn=cmd_devices)

    args = parser.parse_args(argv)
    np.set_printoptions(precision=5, suppress=True)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
