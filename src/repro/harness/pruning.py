"""Lattice-pruned, surrogate-ordered DSE sweeps (ROADMAP: "stop evaluating
points we can predict").

Table 2 spans 57k+ (technique, threshold/rate, hierarchy-level)
configurations, and the grid is *monotone*: making a configuration more
aggressive along any axis — a higher TAF/iACT threshold, a denser
perforation pattern, a coarser AC-state hierarchy level — can only admit
more approximation.  A point that already violates its QoI bound therefore
implies (under that monotonicity) that every more-aggressive descendant
violates it too, so simulating the descendants buys nothing.  Three
components exploit that structure:

* :class:`SweepLattice` — the subsumption lattice over sweep points.
  Points that agree on every non-aggressiveness parameter form a chain
  group; within a group, point *q* descends from *p* when *q*'s
  aggressiveness vector dominates *p*'s.  :func:`run_sweep_pruned`
  evaluates the lattice in ancestor-first waves and, the moment a point's
  error exceeds the bound, records every un-evaluated descendant as a
  ``pruned`` checkpoint row naming the violating ancestor — the same
  mechanism preflight uses for ``infeasible`` rows, so resume, merge, and
  :class:`~repro.harness.database.ResultsDB` work unchanged.
* :class:`Surrogate` — a cheap incremental least-squares regressor of
  (error, speedup) over :func:`~repro.harness.sweep.point_features`,
  refit from completed records.  It *orders* frontiers (it never decides
  anything): likely-Pareto points and likely-violating pruning roots with
  many descendants evaluate first, so budgeted searches and streaming
  consumers see the interesting records early.
* :class:`VariantCache` — a content-hash record cache keyed on the fully
  lowered configuration (app, device, problem, seed, point, site,
  sanitize), so identical configurations across apps, figures, and
  campaigns never re-simulate; optionally persisted to a JSONL file.

Soundness: pruning is exact only where error is monotone along the pruned
axes.  The threshold axes are monotone by construction (a larger threshold
accepts strictly more approximations); the hierarchy-level axis is
heuristic (sharing AC state across a warp usually, but not provably,
increases error).  Surviving (non-pruned) records are byte-identical to
the unpruned sweep's in either case — pruning only ever *removes* rows
from the simulated set, replacing them with ``pruned`` markers.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from repro.gpusim.device import DeviceSpec, get_device
from repro.harness.config import SweepConfig
from repro.harness.database import CheckpointWriter, ResultsDB, _decode, _encode
from repro.harness.runner import RunRecord
from repro.harness.sweep import LEVEL_ORDER, SweepPoint, point_features

#: Default QoI bound when ``SweepConfig(prune=True)`` does not name one —
#: the paper's 10% error budget (Fig 6).
DEFAULT_QOI_BOUND = 0.10

#: ``RunRecord.note`` prefix identifying a lattice-pruned checkpoint row
#: (mirrors the ``"preflight"`` prefix on statically pruned rows).
PRUNED_NOTE_PREFIX = "pruned:"


# ---------------------------------------------------------------------------
# Aggressiveness axes
# ---------------------------------------------------------------------------
def aggression_axes(point: SweepPoint) -> list[tuple[str, int]]:
    """The (param, direction) axes along which ``point`` can get more
    aggressive.  Direction ``+1`` means a larger value admits more
    approximation; ``-1`` the opposite (small-perforation ``skip`` drops
    one of every M iterations, so a *smaller* M skips more)."""
    t = point.technique
    if t in ("taf", "iact"):
        return [("threshold", +1)]
    if t == "perfo":
        kind = point.params.get("kind")
        if kind == "small":
            return [("skip", -1)]
        if kind == "large":
            return [("skip", +1)]
        if kind in ("ini", "fini"):
            return [("skip_percent", +1)]
    return []


def aggression_vector(
    point: SweepPoint, include_level: bool = True
) -> tuple[float, ...] | None:
    """Sortable aggressiveness coordinates, or ``None`` when the point has
    no recognized axes (such points form singleton lattice groups)."""
    axes = aggression_axes(point)
    coords: list[float] = []
    for name, sign in axes:
        val = point.params.get(name)
        if not isinstance(val, (int, float)) or isinstance(val, bool):
            return None
        coords.append(sign * float(val))
    if include_level:
        coords.append(float(LEVEL_ORDER.get(point.level, -1)))
    if not coords:
        return None
    return tuple(coords)


def _base_key(point: SweepPoint, include_level: bool) -> tuple:
    """Everything a point's identity holds *except* its aggressiveness
    coordinates — two points compare only when these match."""
    axis_names = {name for name, _sign in aggression_axes(point)}
    fixed = tuple(
        sorted((k, v) for k, v in point.params.items() if k not in axis_names)
    )
    key = (point.technique, fixed, point.items_per_thread)
    if not include_level:
        key += (point.level,)
    return key


def _dominates(a: tuple, b: tuple) -> bool:
    """True when ``b`` is strictly more aggressive than ``a`` (elementwise
    ``>=`` with at least one ``>``)."""
    return all(x <= y for x, y in zip(a, b)) and a != b


class SweepLattice:
    """Subsumption lattice over a set of sweep points.

    Points sharing a :func:`_base_key` form one group; within a group the
    partial order is elementwise dominance of :func:`aggression_vector`.
    Points with no recognized axes (or non-numeric axis values) are
    singletons — never pruned, never pruning anything.
    """

    def __init__(
        self, points: Iterable[SweepPoint], include_level: bool = True
    ) -> None:
        self.points: list[SweepPoint] = []
        self._vec: dict[str, tuple | None] = {}
        self._groups: dict[tuple, list[SweepPoint]] = OrderedDict()
        self._group_of: dict[str, tuple] = {}
        seen: set[str] = set()
        for n, pt in enumerate(points):
            label = pt.label()
            if label in seen:
                continue
            seen.add(label)
            self.points.append(pt)
            vec = aggression_vector(pt, include_level)
            self._vec[label] = vec
            # Unordered points get a unique group so they stand alone.
            key = (
                _base_key(pt, include_level) if vec is not None else ("·", n)
            )
            self._groups.setdefault(key, []).append(pt)
            self._group_of[label] = key
        self._ancestors: dict[str, list[SweepPoint]] = {}
        self._descendants: dict[str, list[SweepPoint]] = {}
        for group in self._groups.values():
            for pt in group:
                label = pt.label()
                vec = self._vec[label]
                anc: list[SweepPoint] = []
                desc: list[SweepPoint] = []
                if vec is not None:
                    for other in group:
                        if other is pt:
                            continue
                        ovec = self._vec[other.label()]
                        if _dominates(ovec, vec):
                            anc.append(other)
                        elif _dominates(vec, ovec):
                            desc.append(other)
                self._ancestors[label] = anc
                self._descendants[label] = desc

    def __len__(self) -> int:
        return len(self.points)

    def vector(self, point: SweepPoint) -> tuple | None:
        return self._vec.get(point.label())

    def ancestors(self, point: SweepPoint) -> list[SweepPoint]:
        """Strictly less-aggressive points of the same group."""
        return self._ancestors.get(point.label(), [])

    def descendants(self, point: SweepPoint) -> list[SweepPoint]:
        """Strictly more-aggressive points of the same group."""
        return self._descendants.get(point.label(), [])

    def roots(self) -> list[SweepPoint]:
        """Minimal (least aggressive) elements, in input order."""
        return [p for p in self.points if not self._ancestors[p.label()]]

    def groups(self) -> list[list[SweepPoint]]:
        return [list(g) for g in self._groups.values()]


# ---------------------------------------------------------------------------
# Surrogate regressor
# ---------------------------------------------------------------------------
class Surrogate:
    """Incremental linear surrogate of (error, speedup) over point features.

    One least-squares model per technique, refit lazily whenever new
    observations have arrived since the last prediction.  Deliberately
    cheap and deterministic: the surrogate only *orders* work — a wrong
    prediction costs evaluation order, never correctness — so a linear
    model over :func:`~repro.harness.sweep.point_features` (which carries
    log-scale copies of every axis) is plenty.
    """

    #: Observations a technique needs before its model is trusted.
    MIN_FIT = 4

    def __init__(self) -> None:
        self._rows: dict[str, list[list[float]]] = {}
        self._err: dict[str, list[float]] = {}
        self._spd: dict[str, list[float]] = {}
        self._coef: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self._stale: set[str] = set()
        #: Observations accepted (finite, feasible records only).
        self.observed = 0

    def observe(self, point: SweepPoint, record: RunRecord) -> None:
        """Absorb one completed record (infeasible/non-finite are skipped)."""
        if not record.feasible:
            return
        err = float(record.error)
        spd = float(record.reported_speedup)
        if not (np.isfinite(err) and np.isfinite(spd)):
            return
        t = point.technique
        self._rows.setdefault(t, []).append(point_features(point))
        self._err.setdefault(t, []).append(err)
        self._spd.setdefault(t, []).append(spd)
        self._stale.add(t)
        self.observed += 1

    def observe_records(self, records: Iterable[RunRecord]) -> int:
        """Absorb records (points reconstructed from their identity);
        returns how many were actually fit (infeasible rows are skipped)."""
        before = self.observed
        for rec in records:
            self.observe(SweepPoint.of_record(rec), rec)
        return self.observed - before

    def _model(self, technique: str) -> tuple[np.ndarray, np.ndarray] | None:
        rows = self._rows.get(technique)
        if rows is None or len(rows) < self.MIN_FIT:
            return None
        if technique in self._stale or technique not in self._coef:
            X = np.asarray(rows, dtype=np.float64)
            ce, *_ = np.linalg.lstsq(
                X, np.asarray(self._err[technique]), rcond=None
            )
            cs, *_ = np.linalg.lstsq(
                X, np.asarray(self._spd[technique]), rcond=None
            )
            self._coef[technique] = (ce, cs)
            self._stale.discard(technique)
        return self._coef[technique]

    def predict(self, point: SweepPoint) -> tuple[float, float] | None:
        """Predicted ``(error, speedup)``, or None below :data:`MIN_FIT`."""
        model = self._model(point.technique)
        if model is None:
            return None
        x = np.asarray(point_features(point), dtype=np.float64)
        return float(x @ model[0]), float(x @ model[1])

    def score(self, point: SweepPoint, bound: float = DEFAULT_QOI_BOUND) -> float:
        """Paper-style desirability: predicted speedup when predicted under
        the bound, else the (negative) predicted excess error.  Unfitted
        techniques score a neutral 0.0, leaving input order untouched."""
        pred = self.predict(point)
        if pred is None:
            return 0.0
        err, spd = pred
        return spd if err <= bound else -(err - bound)

    def order(
        self,
        points: list[SweepPoint],
        bound: float = DEFAULT_QOI_BOUND,
        prune_weight: Callable[[SweepPoint], float] | None = None,
    ) -> list[SweepPoint]:
        """Stable descending-desirability ordering of ``points``.

        ``prune_weight`` adds a bonus for points the surrogate expects to
        *violate* the bound (likely pruning roots): evaluating them early
        confirms the violation and releases their subtree sooner."""
        def key(pt: SweepPoint) -> float:
            s = self.score(pt, bound)
            if prune_weight is not None and s < 0.0:
                s += prune_weight(pt)
            return -s

        return sorted(points, key=key)  # stable: ties keep input order


# ---------------------------------------------------------------------------
# Variant cache
# ---------------------------------------------------------------------------
class VariantCache:
    """Content-hash record cache keyed on the fully lowered configuration.

    The key digests everything that determines a deterministic simulation's
    record — app, resolved device name, problem override fingerprint, seed,
    the point label (technique + params + level + items-per-thread), the
    site override, and the sanitize flag — so a hit is byte-exact by
    construction.  Shared across engines, figures, and campaigns; pass a
    ``path`` to persist (JSONL: one ``{"key", "record"}`` object per line).
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: dict[str, RunRecord] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        if self.path is not None and self.path.exists():
            self.load(self.path)

    @staticmethod
    def key_for(
        app: str,
        device: str | DeviceSpec,
        point: SweepPoint,
        *,
        site: str | None = None,
        seed: int = 2023,
        problem: dict | None = None,
        sanitize: bool = False,
    ) -> str:
        """Stable digest of one lowered configuration."""
        payload = {
            "app": app,
            "device": get_device(device).name,
            "point": point.label(),
            "site": site,
            "seed": int(seed),
            "problem": repr(sorted(problem.items())) if problem else "",
            "sanitize": bool(sanitize),
        }
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def get(self, key: str) -> RunRecord | None:
        rec = self._records.get(key)
        if rec is None:
            self.misses += 1
        else:
            self.hits += 1
        return rec

    def put(self, key: str, record: RunRecord) -> None:
        if key not in self._records:
            self.stores += 1
        self._records[key] = record

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def save(self, path: str | Path | None = None) -> Path:
        """Write every cached record to ``path`` (default: the load path)."""
        dest = Path(path) if path is not None else self.path
        if dest is None:
            raise ValueError("VariantCache.save: no path given or configured")
        if dest.parent != Path(""):
            dest.parent.mkdir(parents=True, exist_ok=True)
        with dest.open("w") as fh:
            for key, rec in self._records.items():
                fh.write(
                    json.dumps(
                        {"key": key, "record": _encode(rec.to_dict())},
                        allow_nan=False,
                    )
                    + "\n"
                )
        return dest

    def load(self, path: str | Path) -> int:
        """Merge records from ``path``; returns how many were loaded."""
        n = 0
        for line in Path(path).read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                rec = RunRecord(**_decode(obj["record"]))
            except (json.JSONDecodeError, KeyError, TypeError):
                continue  # torn line: the variant just re-simulates
            self._records[obj["key"]] = rec
            n += 1
        return n


def resolve_variant_cache(value) -> "VariantCache | None":
    """Normalize a ``SweepConfig.variant_cache`` value to an instance."""
    if value is None:
        return None
    if isinstance(value, VariantCache):
        return value
    return VariantCache(value)


# ---------------------------------------------------------------------------
# Pruned checkpoint rows
# ---------------------------------------------------------------------------
def pruned_record(
    app: str,
    device_name: str,
    point: SweepPoint,
    ancestor: str,
    ancestor_error: float,
    bound: float,
) -> RunRecord:
    """The checkpoint row recorded for a lattice-pruned point.

    Shaped exactly like a preflight ``infeasible`` row — ``feasible=False``
    with a provenance note — so checkpoint resume, merge, and every
    :class:`ResultsDB` query treat it as just another row; the pruning
    ancestor's label rides in both the note and ``extra["pruned_by"]``."""
    return RunRecord(
        app=app,
        device=device_name,
        technique=point.technique,
        params=dict(point.params),
        level=point.level,
        items_per_thread=point.items_per_thread,
        feasible=False,
        note=(
            f"{PRUNED_NOTE_PREFIX} ancestor {ancestor} "
            f"error {ancestor_error:.6g} > bound {bound:g}"
        ),
        extra={
            "pruned_by": ancestor,
            "ancestor_error": ancestor_error,
            "qoi_bound": bound,
        },
    )


def is_pruned_record(record: RunRecord) -> bool:
    """True for rows written by :func:`pruned_record`."""
    return not record.feasible and (record.note or "").startswith(
        PRUNED_NOTE_PREFIX
    )


def _violates(record: RunRecord, bound: float) -> bool:
    """A feasible record whose error exceeds the QoI bound (non-finite
    errors count: a diverged run certainly violates)."""
    return bool(record.feasible) and not (float(record.error) <= bound)


# ---------------------------------------------------------------------------
# The pruned sweep driver
# ---------------------------------------------------------------------------
def run_sweep_pruned(
    app: str,
    device: str | DeviceSpec,
    points: list[SweepPoint],
    *,
    site: str | None = None,
    problems: dict | None = None,
    seed: int = 2023,
    config: SweepConfig | None = None,
    engine=None,
):
    """Execute ``points`` with lattice pruning (and optional surrogate
    ordering); returns the same :class:`~repro.harness.executor.SweepReport`
    shape as :func:`~repro.harness.executor.run_sweep_parallel`.

    The lattice is evaluated in ancestor-first waves.  Before each wave,
    every ready point with a bound-violating evaluated ancestor is recorded
    as a ``pruned`` checkpoint row (never simulated); the surviving wave is
    ordered by the surrogate when ``config.order`` is set and submitted
    through a :class:`~repro.harness.batch.BatchEngine`.  Records for
    evaluated points are byte-identical to the unpruned sweep's — pruning
    only substitutes rows for points it skips.

    ``config.checkpoint`` is managed *here* (loaded once for resume, each
    decided row appended in wave order); waves run with the checkpoint
    stripped from their config so the engine does not double-write.
    """
    from repro.harness.batch import BatchEngine, BatchJob
    from repro.harness.executor import SweepReport

    cfg = config if config is not None else SweepConfig(prune=True)
    bound = DEFAULT_QOI_BOUND if cfg.prune is True else float(cfg.prune)
    dev_name = get_device(device).name
    t0 = time.monotonic()

    unique: "OrderedDict[str, SweepPoint]" = OrderedDict()
    for pt in points:
        unique.setdefault(pt.label(), pt)
    lattice = SweepLattice(unique.values())

    # Resume: checkpoint rows (evaluated, preflight, and prior pruned rows
    # alike) are trusted decisions.
    decided: dict[str, RunRecord] = {}
    if cfg.checkpoint is not None and Path(cfg.checkpoint).exists():
        for rec in ResultsDB.load(cfg.checkpoint).query(feasible=None):
            if rec.app != app or rec.device != dev_name:
                continue
            label = SweepPoint.of_record(rec).label()
            if label in unique:
                decided[label] = rec
    skipped = len(decided)

    writer = (
        CheckpointWriter(cfg.checkpoint) if cfg.checkpoint is not None else None
    )
    # Waves run without the checkpoint (managed here) and without prune /
    # order (pruning is this driver; ordering happens on the wave itself).
    wave_cfg = cfg.replace(checkpoint=None, prune=False, order=False)
    owned = engine is None
    if owned:
        engine = BatchEngine(problems=problems, seed=seed, config=wave_cfg)
    variant_hits0 = engine.stats.variant_hits

    surrogate: Surrogate | None = None
    if cfg.order and not callable(cfg.order):
        surrogate = Surrogate()
        surrogate.observe_records(decided.values())

    evaluated = preflight_pruned = lattice_pruned = waves = 0
    try:
        while True:
            undecided = [
                pt for label, pt in unique.items() if label not in decided
            ]
            if not undecided:
                break
            ready = [
                pt
                for pt in undecided
                if all(
                    a.label() in decided for a in lattice.ancestors(pt)
                )
            ]
            if not ready:  # pragma: no cover - partial orders are acyclic
                raise RuntimeError("pruned sweep stalled: no ready points")

            wave: list[SweepPoint] = []
            for pt in ready:
                violators = [
                    a
                    for a in lattice.ancestors(pt)
                    if _violates(decided[a.label()], bound)
                ]
                if violators:
                    # Deterministic provenance: the least aggressive
                    # violating ancestor — the subtree's original root.
                    violators.sort(
                        key=lambda a: (lattice.vector(a), a.label())
                    )
                    root = violators[0]
                    rec = pruned_record(
                        app,
                        dev_name,
                        pt,
                        root.label(),
                        float(decided[root.label()].error),
                        bound,
                    )
                    decided[pt.label()] = rec
                    lattice_pruned += 1
                    if writer is not None:
                        writer.write(rec)
                else:
                    wave.append(pt)
            if not wave:
                waves += 1
                continue

            if callable(cfg.order):
                jobs = cfg.order(
                    [BatchJob(app, device, pt, site=site) for pt in wave]
                )
                wave = [job.point for job in jobs]
            elif surrogate is not None:
                wave = surrogate.order(
                    wave,
                    bound=bound,
                    prune_weight=lambda p: 0.1 * len(lattice.descendants(p)),
                )
            rep = engine.submit(
                [BatchJob(app, device, pt, site=site) for pt in wave],
                config=wave_cfg,
            ).report()
            evaluated += rep.evaluated
            preflight_pruned += rep.pruned
            for pt, rec in zip(wave, rep.records):
                decided[pt.label()] = rec
                if writer is not None:
                    writer.write(rec)
                if surrogate is not None:
                    surrogate.observe(pt, rec)
            waves += 1
    finally:
        if writer is not None:
            writer.close()
        variant_hits = engine.stats.variant_hits - variant_hits0
        if owned:
            engine.close()

    return SweepReport(
        records=[decided[pt.label()] for pt in points],
        evaluated=evaluated,
        skipped=skipped,
        pruned=preflight_pruned,
        elapsed=time.monotonic() - t0,
        checkpoint=(
            str(cfg.checkpoint) if cfg.checkpoint is not None else None
        ),
        extra={
            "lattice_pruned": lattice_pruned,
            "waves": waves,
            "qoi_bound": bound,
            "ordered": bool(cfg.order),
            "variant_hits": variant_hits,
            "surrogate_observations": (
                surrogate.observed if surrogate is not None else 0
            ),
        },
    )
