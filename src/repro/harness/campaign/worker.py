"""Campaign workers: claim shards, evaluate points, write fenced records.

A worker is a plain :class:`~repro.harness.batch.BatchEngine` session
pointed at a campaign directory.  It loops: claim a shard job from the
queue, evaluate that shard's points, append each record to the shard's
JSONL tagged with the claim's fencing token, heartbeat between points,
and mark the job done.  Nothing about the evaluation itself is
campaign-specific — the engine runs the exact serial path a local sweep
runs, so the records are byte-identical to a serial sweep's (the
equivalence the merge asserts).

Crash tolerance is the lease protocol's job, not the worker's:

* a worker that dies mid-shard simply stops heartbeating; after the TTL
  the next claimer steals the lease under a higher fence, **re-emits**
  the dead worker's already-written records under its own fence (content
  byte-identical — only the tag differs), evaluates the remainder, and
  completes;
* a worker that *stalls* (GC pause, NFS hang) and wakes after its lease
  was stolen may keep appending to the shard file — harmlessly.  Its
  next heartbeat raises :class:`~repro.harness.campaign.lease.LeaseLost`
  and the records it wrote meanwhile carry a superseded fence, which the
  merge rejects against the job's completion fence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.harness.batch import BatchEngine, BatchJob
from repro.harness.campaign.lease import LeaseLost
from repro.harness.campaign.manifest import (
    CampaignError,
    CampaignManifest,
    load_campaign,
    shard_path,
)
from repro.harness.campaign.queue import Claim, FileQueue
from repro.harness.config import SweepConfig
from repro.harness.database import CheckpointWriter, ResultsDB
from repro.harness.runner import RunRecord
from repro.harness.sweep import SweepPoint

#: Default lease TTL (seconds): how long a silent worker is trusted.
DEFAULT_TTL = 60.0


class WorkerKilled(RuntimeError):
    """Raised by ``on_point`` hooks to simulate a worker dying mid-shard.

    Deliberately *not* caught by :meth:`CampaignWorker.run`: a killed
    worker neither releases nor completes its claim, so the lease stalls
    until the TTL expires and another worker reclaims the shard — the
    exact crash the fabric must absorb."""


def tag_record(record: RunRecord, fence: int, job: str, owner: str) -> RunRecord:
    """Copy of ``record`` carrying the campaign fence tag.

    The tag is appended as the **last** key of ``extra`` (any stale tag
    is stripped first), so popping it at merge time restores the
    original key order — and therefore the original serialized bytes
    (:func:`~repro.harness.database.dumps_record` preserves insertion
    order).  The input record is never mutated: engine record caches
    share record objects across callers."""
    data = record.to_dict()
    data["extra"].pop("campaign", None)
    data["extra"]["campaign"] = {"fence": fence, "job": job, "worker": owner}
    return RunRecord(**data)


def strip_tag(record: RunRecord) -> tuple[RunRecord, dict | None]:
    """Inverse of :func:`tag_record`: (untagged copy, the tag or None)."""
    data = record.to_dict()
    tag = data["extra"].pop("campaign", None)
    return RunRecord(**data), tag


@dataclass
class WorkerReport:
    """What one :meth:`CampaignWorker.run` loop accomplished."""

    owner: str
    jobs_done: int = 0
    evaluated: int = 0
    #: Records inherited from a dead predecessor and re-issued under our
    #: fence (content-identical, new tag).
    reemitted: int = 0
    records_written: int = 0
    leases_lost: int = 0
    jobs: list = field(default_factory=list)


class CampaignWorker:
    """One worker process's view of a campaign (see module docstring).

    ``engine`` defaults to a fresh single-process
    :class:`~repro.harness.batch.BatchEngine` built from the campaign
    spec's ``problems``/``seed``/``sanitize`` — the configuration a serial
    sweep of the same spec would use, which is what keeps worker records
    byte-identical to serial ones.  ``clock`` and ``on_point`` exist for
    tests: ``on_point(worker, claim, label)`` runs after each point's
    record is written (raise :class:`WorkerKilled` there to simulate a
    mid-shard crash)."""

    def __init__(
        self,
        directory: str | Path,
        owner: str,
        *,
        ttl: float = DEFAULT_TTL,
        engine: BatchEngine | None = None,
        clock=None,
        on_point=None,
    ) -> None:
        self.directory = Path(directory)
        self.owner = owner
        self.ttl = float(ttl)
        self.manifest: CampaignManifest = load_campaign(directory, clock=clock)
        self.spec = self.manifest.spec
        self.queue: FileQueue = self.manifest.queue()
        self.on_point = on_point
        self.engine = engine or BatchEngine(
            problems=self.spec.problems,
            seed=self.spec.seed,
            config=SweepConfig(workers=1, sanitize=self.spec.sanitize),
        )
        self._owns_engine = engine is None

    # ------------------------------------------------------------------
    def _points_of(self, payload: dict) -> list[SweepPoint]:
        if payload.get("spec_hash") != self.spec.spec_hash():
            raise CampaignError(
                f"{payload.get('job')}: shard was split from a different "
                f"spec than {self.manifest.path} now holds"
            )
        return [
            SweepPoint(
                p["technique"],
                dict(p["params"]),
                level=p.get("level", "thread"),
                items_per_thread=p.get("items_per_thread", 8),
            )
            for p in payload["points"]
        ]

    def _prior_records(self, job: str) -> dict[str, RunRecord]:
        """Latest record per label already in the shard file (any fence)."""
        path = shard_path(self.directory, job)
        if not path.exists():
            return {}
        prior: dict[str, RunRecord] = {}
        for rec in ResultsDB.load(path).records:
            prior[SweepPoint.of_record(rec).label()] = rec
        return prior

    def process(self, claim: Claim, report: WorkerReport) -> int:
        """Evaluate one claimed shard; returns records written.

        Points whose labels the shard file already holds (a predecessor's
        work) are re-emitted under our fence without re-running; the rest
        go through the engine.  The lease is heartbeated after every
        point, so a healthy worker's liveness window never depends on
        point runtime × shard size."""
        points = self._points_of(claim.payload)
        prior = self._prior_records(claim.job)
        written = 0
        with CheckpointWriter(shard_path(self.directory, claim.job)) as out:
            for point in points:
                label = point.label()
                held = prior.get(label)
                if held is not None:
                    record, _ = strip_tag(held)
                    report.reemitted += 1
                else:
                    record = self.engine.run_point(
                        self.spec.app,
                        self.spec.device,
                        point,
                        site=self.spec.site,
                    )
                    report.evaluated += 1
                out.write(
                    tag_record(
                        record, claim.lease.fence, claim.job, self.owner
                    )
                )
                written += 1
                report.records_written += 1
                if self.on_point is not None:
                    self.on_point(self, claim, label)
                claim = self.queue.heartbeat(claim)
        return written

    def run(self, max_jobs: int | None = None) -> WorkerReport:
        """Claim-and-process until the queue is drained (or ``max_jobs``).

        A lost lease abandons the current shard (its successor re-emits
        whatever we wrote) and moves on to the next claim; any other
        exception propagates — a genuinely crashed worker must *not*
        release its lease, that is the TTL's job."""
        report = WorkerReport(owner=self.owner)
        while max_jobs is None or report.jobs_done < max_jobs:
            claim = self.queue.claim(self.owner, self.ttl)
            if claim is None:
                break
            try:
                written = self.process(claim, report)
                self.queue.complete(claim, records=written)
            except LeaseLost:
                report.leases_lost += 1
                continue
            report.jobs_done += 1
            report.jobs.append(claim.job)
            self.manifest.refresh(queue=self.queue)
        return report

    def close(self) -> None:
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "CampaignWorker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
