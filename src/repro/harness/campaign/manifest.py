"""Campaign specs, shard manifests, and the ``campaign.json`` ledger.

A **campaign** is one sweep — one ``(app, device)`` pair and an ordered
point list — split into shard jobs that any number of machines work
through the file queue.  Three invariants make a Table-2-scale run
globally resumable from any mix of machines:

* the :class:`CampaignSpec` is canonical and hashed: every worker loads
  the spec from the campaign directory and refuses to run against a
  manifest whose hash disagrees (a silently edited spec would break the
  byte-identity contract);
* the unit of distribution is the **existing checkpoint record** — each
  shard lists the ``(app, device, point label)`` identities it owns, the
  same label space the PR-1 resume path and :meth:`ResultsDB.merge`
  dedupe on — so no new wire format exists anywhere;
* ``campaign.json`` snapshots spec hash, shard states, the lease table,
  and progress after every state change, so ``campaign status`` answers
  from one file and a cold machine can decide whether to join, merge, or
  walk away without scanning shards.

Directory layout (everything under one root)::

    campaign.json        the ledger (this module)
    queue/               the work-stealing queue (jobs/leases/tombs/done)
    shards/<job>.jsonl   records written by workers, fence-tagged
    merged.jsonl         default merge output
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.harness.campaign.queue import FileQueue
from repro.harness.sweep import SweepPoint

#: Version of the campaign.json / shard-payload format.
CAMPAIGN_SCHEMA_VERSION = 1

#: Subdirectory names under a campaign root.
QUEUE_DIR = "queue"
SHARD_DIR = "shards"
MERGED_NAME = "merged.jsonl"


class CampaignError(RuntimeError):
    """Campaign-level protocol violations (bad spec, incomplete merge)."""


@dataclass(frozen=True)
class CampaignSpec:
    """Frozen, versioned identity of one campaign's work.

    This is the request object the campaign CLI, :mod:`repro.api`, the
    split tool, and every worker all consume — *what* to run.  Execution
    policy (workers per box, TTLs) deliberately lives elsewhere: two
    machines may run the same spec with different policies, and the
    records must not care.

    ``points`` pins the grid explicitly (a tuple of point dicts, the
    JSONL shape of :class:`~repro.harness.sweep.SweepPoint`); when empty,
    the curated ``technique`` grid at ``effort`` is resolved — the same
    rule :func:`repro.api.sweep` applies.
    """

    app: str
    device: str = "v100_small"
    technique: str | None = None
    effort: str = "quick"
    points: tuple = ()
    site: str | None = None
    seed: int = 2023
    problems: dict | None = None
    sanitize: bool = False
    version: int = CAMPAIGN_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.version != CAMPAIGN_SCHEMA_VERSION:
            raise CampaignError(
                f"unsupported campaign spec version {self.version!r} "
                f"(this build speaks {CAMPAIGN_SCHEMA_VERSION})"
            )
        if not self.points and self.technique is None:
            raise CampaignError("CampaignSpec needs points= or technique=")
        # Normalize list inputs so equal specs hash equally.
        if isinstance(self.points, list):
            object.__setattr__(self, "points", tuple(self.points))

    # -- identity -------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "device": self.device,
            "technique": self.technique,
            "effort": self.effort,
            "points": [dict(p) for p in self.points],
            "site": self.site,
            "seed": self.seed,
            "problems": self.problems,
            "sanitize": self.sanitize,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        data = dict(data)
        data["points"] = tuple(data.get("points") or ())
        return cls(**data)

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, allow_nan=False)

    def spec_hash(self) -> str:
        """sha256 of the canonical spec — the campaign's global identity."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    # -- work -----------------------------------------------------------
    def resolve_points(self) -> list[SweepPoint]:
        """The campaign's ordered point list (the serial sweep order)."""
        if self.points:
            return [
                SweepPoint(
                    p["technique"],
                    dict(p["params"]),
                    level=p.get("level", "thread"),
                    items_per_thread=p.get("items_per_thread", 8),
                )
                for p in self.points
            ]
        from repro.harness.figures import candidates

        pts = candidates(self.app, self.technique, self.effort)
        if not pts:
            raise CampaignError(
                f"no candidate grid for {self.app}/{self.technique} "
                f"at effort {self.effort!r}"
            )
        return pts

    @staticmethod
    def point_dict(point: SweepPoint) -> dict:
        """The JSONL shape of one point (what ``points=`` tuples hold)."""
        return {
            "technique": point.technique,
            "params": dict(point.params),
            "level": point.level,
            "items_per_thread": point.items_per_thread,
        }


# ---------------------------------------------------------------------------
def campaign_paths(directory: str | Path) -> tuple[Path, Path, Path, Path]:
    """(manifest file, queue root, shard dir, default merge output)."""
    root = Path(directory)
    return (
        root / "campaign.json",
        root / QUEUE_DIR,
        root / SHARD_DIR,
        root / MERGED_NAME,
    )


def shard_path(directory: str | Path, job: str) -> Path:
    return Path(directory) / SHARD_DIR / f"{job}.jsonl"


def _shard_job_id(index: int) -> str:
    return f"shard-{index:04d}"


def partition_labels(n_points: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous, balanced ``[start, stop)`` slices over the point list.

    Contiguity keeps each shard's records a prefix-ordered slice of the
    serial sweep, so the merge's canonical reordering is a pure
    concatenation in the common (no-conflict) case.  Sizes differ by at
    most one."""
    shards = max(1, min(int(shards), n_points)) if n_points else 0
    if not shards:
        return []
    base, extra = divmod(n_points, shards)
    out, start = [], 0
    for i in range(shards):
        stop = start + base + (1 if i < extra else 0)
        out.append((start, stop))
        start = stop
    return out


def init_campaign(
    directory: str | Path,
    spec: CampaignSpec,
    shards: int = 2,
    clock=None,
) -> "CampaignManifest":
    """Create a campaign directory: queue jobs + ``campaign.json``.

    Partitions the spec's resolved point list into ``shards`` contiguous
    jobs keyed by the checkpoint identity ``(app, device, point label)``
    and registers each as an immutable queue job.  Idempotent re-init of
    the same spec is an error — resume by just pointing workers at the
    directory."""
    manifest_path, queue_root, shard_dir, _ = campaign_paths(directory)
    if manifest_path.exists():
        raise CampaignError(
            f"{manifest_path}: campaign already initialised; "
            f"point workers at it to resume, or choose a new directory"
        )
    Path(directory).mkdir(parents=True, exist_ok=True)
    shard_dir.mkdir(parents=True, exist_ok=True)
    points = spec.resolve_points()
    from repro.gpusim.device import get_device

    device_name = get_device(spec.device).name
    queue = FileQueue(queue_root, **({"clock": clock} if clock else {}))
    shard_meta: dict[str, dict] = {}
    for idx, (start, stop) in enumerate(partition_labels(len(points), shards)):
        job = _shard_job_id(idx)
        block = points[start:stop]
        payload = {
            "job": job,
            "version": CAMPAIGN_SCHEMA_VERSION,
            "spec_hash": spec.spec_hash(),
            "app": spec.app,
            "device": spec.device,
            "site": spec.site,
            "points": [CampaignSpec.point_dict(p) for p in block],
            "labels": [p.label() for p in block],
        }
        queue.add(job, payload)
        shard_meta[job] = {
            "points": len(block),
            "first_label": block[0].label(),
            "slice": [start, stop],
        }
    manifest = CampaignManifest(
        directory=str(directory),
        spec=spec,
        shard_meta=shard_meta,
        device_name=device_name,
    )
    manifest.refresh(queue=queue)
    return manifest


def load_campaign(directory: str | Path, clock=None) -> "CampaignManifest":
    """Load an existing campaign, verifying the spec hash."""
    manifest_path, queue_root, _, _ = campaign_paths(directory)
    try:
        data = json.loads(manifest_path.read_text())
    except FileNotFoundError:
        raise CampaignError(f"{manifest_path}: no campaign here") from None
    if data.get("version") != CAMPAIGN_SCHEMA_VERSION:
        raise CampaignError(
            f"{manifest_path}: campaign schema {data.get('version')!r} "
            f"unsupported (this build speaks {CAMPAIGN_SCHEMA_VERSION})"
        )
    spec = CampaignSpec.from_dict(data["spec"])
    if spec.spec_hash() != data["spec_hash"]:
        raise CampaignError(
            f"{manifest_path}: spec hash mismatch — the stored spec was "
            f"edited after split; records would not be comparable"
        )
    manifest = CampaignManifest(
        directory=str(directory),
        spec=spec,
        shard_meta=data.get("shards", {}),
        device_name=data.get("device_name", ""),
    )
    if clock is not None:
        manifest._clock = clock
    return manifest


@dataclass
class CampaignManifest:
    """The ``campaign.json`` ledger: spec + shard states + lease table.

    The mutable half (shard states, lease snapshot, progress) is a
    *snapshot* regenerated from the queue on every :meth:`refresh` and
    written atomically, so concurrent writers cannot corrupt it — the
    newest snapshot simply wins."""

    directory: str
    spec: CampaignSpec
    shard_meta: dict = field(default_factory=dict)
    device_name: str = ""
    _clock: object = None

    @property
    def path(self) -> Path:
        return campaign_paths(self.directory)[0]

    def queue(self) -> FileQueue:
        kwargs = {"clock": self._clock} if self._clock is not None else {}
        return FileQueue(campaign_paths(self.directory)[1], **kwargs)

    def progress(self, queue: FileQueue | None = None) -> dict:
        """Shard-state counts plus per-shard record totals."""
        queue = queue or self.queue()
        states = {"pending": 0, "leased": 0, "expired": 0, "done": 0}
        done_records = 0
        for job in queue.jobs():
            states[queue.state_of(job)] += 1
            info = queue.done_info(job)
            if info is not None:
                done_records += int(info.get("records", 0))
        states["records"] = done_records
        states["total_points"] = sum(
            int(meta.get("points", 0)) for meta in self.shard_meta.values()
        )
        return states

    def refresh(self, queue: FileQueue | None = None) -> dict:
        """Re-snapshot queue state into ``campaign.json``; returns it."""
        from repro.harness.campaign.lease import write_atomic

        queue = queue or self.queue()
        snapshot = {
            "version": CAMPAIGN_SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec.spec_hash(),
            "device_name": self.device_name,
            "shards": self.shard_meta,
            "lease_table": queue.table(),
            "progress": self.progress(queue),
        }
        write_atomic(self.path, snapshot)
        return snapshot
