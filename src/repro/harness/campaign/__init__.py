"""Multi-worker, crash-tolerant campaign fabric.

Scales the single-box :class:`~repro.harness.batch.BatchEngine` to the
paper's Table-2 reality — 57,288 configurations, up to 988 GPU-hours per
benchmark (§4) — by splitting a sweep's point space into shard jobs that
any number of plain engine sessions work through a file-backed queue:

* :func:`split_campaign` partitions a :class:`CampaignSpec`'s points into
  shard manifests keyed by the existing ``(app, device, point label)``
  checkpoint identity and writes the ``campaign.json`` ledger;
* :class:`~repro.harness.campaign.worker.CampaignWorker` sessions claim
  shards under leases with heartbeats (:mod:`.queue`, :mod:`.lease`), so
  a dead worker's unfinished shard is reclaimed after its TTL and
  re-issued under a higher fencing token;
* :func:`merge_campaign` folds the shard JSONLs back into one
  :class:`~repro.harness.database.ResultsDB` — rejecting records whose
  fence is not the one their job *completed* under (a stalled worker's
  late writes), deduplicating and conflict-counting the rest — and
  writes them in canonical spec order, producing a file **byte-identical**
  to a serial sweep's checkpoint of the same points.

The contract tested end-to-end (two workers, one killed mid-shard): kill,
reclaim, re-issue, merge — and the merged bytes equal the serial bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.harness.campaign.lease import Lease, LeaseError, LeaseLost
from repro.harness.campaign.manifest import (
    CAMPAIGN_SCHEMA_VERSION,
    CampaignError,
    CampaignManifest,
    CampaignSpec,
    campaign_paths,
    init_campaign,
    load_campaign,
    shard_path,
)
from repro.harness.campaign.queue import Claim, FileQueue
from repro.harness.campaign.worker import (
    DEFAULT_TTL,
    CampaignWorker,
    WorkerKilled,
    WorkerReport,
    strip_tag,
    tag_record,
)
from repro.harness.database import (
    CheckpointWriter,
    MergeStats,
    ResultsDB,
)
from repro.harness.sweep import SweepPoint

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "CampaignError",
    "CampaignManifest",
    "CampaignSpec",
    "CampaignStatus",
    "CampaignWorker",
    "Claim",
    "DEFAULT_TTL",
    "FileQueue",
    "Lease",
    "LeaseError",
    "LeaseLost",
    "MergeResult",
    "SplitResult",
    "WorkerKilled",
    "WorkerReport",
    "campaign_paths",
    "campaign_status",
    "init_campaign",
    "load_campaign",
    "merge_campaign",
    "run_worker",
    "shard_path",
    "split_campaign",
    "strip_tag",
    "tag_record",
]


@dataclass
class SplitResult:
    """Outcome of :func:`split_campaign`."""

    directory: str
    spec_hash: str
    shards: int
    points: int
    jobs: list = field(default_factory=list)


@dataclass
class MergeResult:
    """Outcome of :func:`merge_campaign`."""

    directory: str
    output: str
    #: Records written to ``output``, in canonical spec order.
    merged: int
    #: Cross-shard dedupe/conflict accounting (:class:`MergeStats`).
    stats: MergeStats
    #: Records rejected because their fence was not the completion fence
    #: of their job — late writes from stalled/superseded workers.
    rejected_stale: int = 0
    shards_merged: list = field(default_factory=list)
    #: Unfinished shards excluded by a partial (``strict=False``) merge.
    shards_skipped: list = field(default_factory=list)
    #: Labels the spec expects that no accepted record covered (partial
    #: merges only; a strict merge raises instead).
    missing: list = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.shards_skipped and not self.missing


@dataclass
class CampaignStatus:
    """Snapshot of a campaign's ledger (:func:`campaign_status`)."""

    directory: str
    spec_hash: str
    progress: dict
    shards: dict
    lease_table: dict

    @property
    def complete(self) -> bool:
        return (
            self.progress.get("done", 0) > 0
            and self.progress.get("done")
            == sum(
                self.progress.get(k, 0)
                for k in ("pending", "leased", "expired", "done")
            )
        )


# ---------------------------------------------------------------------------
def split_campaign(
    directory: str | Path,
    spec: CampaignSpec,
    shards: int = 2,
    clock=None,
) -> SplitResult:
    """Partition ``spec``'s point space into shard jobs under ``directory``.

    See :func:`~repro.harness.campaign.manifest.init_campaign` for the
    on-disk layout.  The job payloads carry both the point dicts and
    their labels, so ``campaign status`` and the merge can reason about
    coverage without re-deriving the grid."""
    manifest = init_campaign(directory, spec, shards=shards, clock=clock)
    return SplitResult(
        directory=str(directory),
        spec_hash=spec.spec_hash(),
        shards=len(manifest.shard_meta),
        points=sum(m["points"] for m in manifest.shard_meta.values()),
        jobs=sorted(manifest.shard_meta),
    )


def run_worker(
    directory: str | Path,
    owner: str,
    *,
    ttl: float = DEFAULT_TTL,
    max_jobs: int | None = None,
    engine=None,
    clock=None,
    on_point=None,
) -> WorkerReport:
    """Run one worker loop against a campaign until its queue drains."""
    with CampaignWorker(
        directory, owner, ttl=ttl, engine=engine, clock=clock, on_point=on_point
    ) as worker:
        return worker.run(max_jobs=max_jobs)


def merge_campaign(
    directory: str | Path,
    output: str | Path | None = None,
    *,
    strict: bool = True,
    clock=None,
) -> MergeResult:
    """Fold the campaign's shard JSONLs into one canonical checkpoint.

    For every *completed* job, accept exactly the records tagged with the
    fence the job finished under — anything else in the shard file (a
    predecessor's pre-steal writes, a stalled worker's post-steal writes)
    is counted in ``rejected_stale`` and dropped.  Accepted records have
    their campaign tag popped (restoring the exact bytes a serial sweep
    would have written), are deduplicated/conflict-resolved across shards
    via :meth:`ResultsDB.merge`, and are written to ``output`` in the
    spec's canonical point order behind the usual schema header — the
    same file a serial checkpointed sweep of the spec produces.

    ``strict=True`` (default) demands a finished campaign: an unfinished
    shard or an uncovered label raises :class:`CampaignError`.
    ``strict=False`` merges what exists (progress snapshots, triage)."""
    manifest = load_campaign(directory, clock=clock)
    queue = manifest.queue()
    spec = manifest.spec
    db = ResultsDB()
    stats = MergeStats()
    rejected_stale = 0
    shards_merged: list[str] = []
    shards_skipped: list[str] = []
    for job in queue.jobs():
        fence = queue.done_fence(job)
        if fence is None:
            if strict:
                raise CampaignError(
                    f"{job}: not completed (state {queue.state_of(job)!r}); "
                    f"merge with strict=False for a partial snapshot"
                )
            shards_skipped.append(job)
            continue
        path = shard_path(directory, job)
        if not path.exists():
            raise CampaignError(
                f"{job}: marked done under fence {fence} but "
                f"{path} does not exist"
            )
        accepted = []
        for rec in ResultsDB.load(path).records:
            clean, tag = strip_tag(rec)
            if (
                tag is None
                or tag.get("job") != job
                or int(tag.get("fence", -1)) != fence
            ):
                rejected_stale += 1
                continue
            accepted.append(clean)
        stats += db.merge(accepted)
        shards_merged.append(job)

    by_label = {SweepPoint.of_record(r).label(): r for r in db.records}
    ordered, missing = [], []
    for point in spec.resolve_points():
        rec = by_label.get(point.label())
        if rec is None:
            missing.append(point.label())
        else:
            ordered.append(rec)
    if missing and strict:
        raise CampaignError(
            f"merge is missing {len(missing)} label(s) the spec expects "
            f"(first: {missing[0]!r}) — a done shard under-covered its slice"
        )

    out_path = Path(output) if output is not None else campaign_paths(directory)[3]
    if out_path.exists():
        out_path.unlink()  # clean header, no stale append
    with CheckpointWriter(out_path) as writer:
        writer.write(ordered)
    manifest.refresh(queue=queue)
    return MergeResult(
        directory=str(directory),
        output=str(out_path),
        merged=len(ordered),
        stats=stats,
        rejected_stale=rejected_stale,
        shards_merged=shards_merged,
        shards_skipped=shards_skipped,
        missing=missing,
    )


def campaign_status(directory: str | Path, clock=None) -> CampaignStatus:
    """Re-snapshot and return the campaign ledger (lease table included)."""
    manifest = load_campaign(directory, clock=clock)
    snapshot = manifest.refresh()
    return CampaignStatus(
        directory=str(directory),
        spec_hash=snapshot["spec_hash"],
        progress=snapshot["progress"],
        shards=snapshot["shards"],
        lease_table=snapshot["lease_table"],
    )
