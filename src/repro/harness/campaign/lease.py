"""Leases with heartbeats and fencing tokens for campaign jobs.

A lease is the queue's claim record: *who* is working a job, under which
**fencing token** (a per-job monotonically increasing integer), and until
*when* the claim is trusted (last heartbeat + TTL).  The fabric's crash
tolerance hangs off two rules:

* a lease whose deadline has passed may be **stolen** — its file is
  atomically renamed into a tombstone carrying its fence, and the next
  claimer takes ``fence + 1`` — so a dead shard's unfinished points are
  reclaimed and re-issued rather than lost;
* every record a worker writes is tagged with the fence it held at the
  time, and the merge only accepts records carrying the fence the job was
  *completed* under — so a stalled worker that wakes up after its lease
  was stolen can keep appending to its shard file, harmlessly: its late
  records are fenced out (see :func:`repro.harness.campaign.merge_campaign`).

Everything here is plain JSON files manipulated with the two POSIX
primitives whose atomicity the design leans on: ``open(O_CREAT|O_EXCL)``
(exactly one creator wins) and ``os.rename`` (exactly one renamer of an
existing file wins).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path


class LeaseError(RuntimeError):
    """Base class for lease-protocol violations."""


class LeaseLost(LeaseError):
    """The caller no longer holds the lease it is acting under.

    Raised by heartbeat/complete when the lease file is gone, carries a
    different owner/fence (it was stolen and re-claimed), or the job has
    already been completed under another fence.  A worker receiving this
    must abandon the job — anything it writes from now on will be fenced
    out at merge time."""


@dataclass(frozen=True)
class Lease:
    """One claim on one job: owner, fencing token, and liveness window."""

    job: str
    owner: str
    fence: int
    ttl: float
    granted_at: float
    heartbeat_at: float

    @property
    def deadline(self) -> float:
        """Instant after which the lease may be stolen."""
        return self.heartbeat_at + self.ttl

    def expired(self, now: float) -> bool:
        return now > self.deadline

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Lease":
        return cls(**data)


def write_atomic(path: Path, payload: dict) -> None:
    """Write ``payload`` as JSON via a same-directory tmp file + rename."""
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
    os.replace(tmp, path)


def create_exclusive(path: Path, payload: dict) -> bool:
    """Create ``path`` with ``payload`` iff it does not exist.

    Returns False when another process won the race (the file exists)."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    with os.fdopen(fd, "w") as fh:
        fh.write(json.dumps(payload, sort_keys=True) + "\n")
    return True


def read_json(path: Path) -> dict | None:
    """Load one JSON file; ``None`` when it vanished under us (lost race)."""
    try:
        return json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        # A decode error means we read mid-replace; the caller retries or
        # skips, both safe (the authoritative state is the next read).
        return None
