"""File-backed work-stealing job queue with leases and fencing.

The queue is a directory — no daemon, no socket, no lock server — so any
machine that can see the filesystem (a shared mount, an rsync'd tree, one
box running several workers) can claim work.  Layout under ``root``::

    jobs/<job>.json      immutable job payloads (written once at split)
    leases/<job>.json    the active claim, if any (owner, fence, heartbeat)
    tombs/<job>.<n>.json tombstones of superseded claims (fence history)
    done/<job>.json      completion markers (the fence the job finished under)

State transitions use only atomic primitives (see
:mod:`repro.harness.campaign.lease`), so concurrent workers — including
workers racing to steal the same expired lease — resolve every conflict
to exactly one winner:

* **claim**: create ``leases/<job>.json`` with ``O_CREAT|O_EXCL``; the
  fence is ``1 + the highest tombstoned fence`` (tombstones persist, so
  fences are monotonic across any interleaving of claims and steals);
* **steal**: rename an *expired* lease to its tombstone — one renamer
  wins, everyone else moves on — after which the job is claimable again;
* **complete**: re-verify ownership, write ``done/<job>.json`` carrying
  the fence, remove the lease.  The done fence is the only fence the
  merge accepts records under.

The queue is *work-stealing* in the idle-worker-pulls sense: nothing
assigns jobs; every worker scans ``jobs/`` (cheapest-first by sorted id)
and takes whatever is unclaimed or reclaimable.  A socket front can later
wrap this same directory protocol without changing workers.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.harness.campaign.lease import (
    Lease,
    LeaseLost,
    create_exclusive,
    read_json,
    write_atomic,
)

#: Subdirectories a queue root contains.
QUEUE_DIRS = ("jobs", "leases", "tombs", "done")


@dataclass
class Claim:
    """A successfully claimed job: its payload plus the lease held."""

    job: str
    payload: dict
    lease: Lease


class FileQueue:
    """Directory-backed job queue (see module docstring for the protocol).

    ``clock`` injects time (seconds, ``time.time``-like) so lease expiry
    and reclamation are deterministic under test."""

    def __init__(self, root: str | Path, clock=time.time) -> None:
        self.root = Path(root)
        self.clock = clock
        for sub in QUEUE_DIRS:
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # -- paths ----------------------------------------------------------
    def _job_path(self, job: str) -> Path:
        return self.root / "jobs" / f"{job}.json"

    def _lease_path(self, job: str) -> Path:
        return self.root / "leases" / f"{job}.json"

    def _tomb_path(self, job: str, fence: int) -> Path:
        return self.root / "tombs" / f"{job}.{fence}.json"

    def _done_path(self, job: str) -> Path:
        return self.root / "done" / f"{job}.json"

    # -- job book-keeping ----------------------------------------------
    def add(self, job: str, payload: dict) -> None:
        """Register one immutable job (split-time only)."""
        if not create_exclusive(self._job_path(job), payload):
            raise ValueError(f"job {job!r} already exists in the queue")

    def jobs(self) -> list[str]:
        """All job ids, sorted (the claim scan order)."""
        return sorted(p.stem for p in (self.root / "jobs").glob("*.json"))

    def payload(self, job: str) -> dict:
        data = read_json(self._job_path(job))
        if data is None:
            raise KeyError(f"unknown job {job!r}")
        return data

    def is_done(self, job: str) -> bool:
        return self._done_path(job).exists()

    def done_fence(self, job: str) -> int | None:
        """The fence the job was completed under, or None if unfinished."""
        data = read_json(self._done_path(job))
        return None if data is None else int(data["fence"])

    def done_info(self, job: str) -> dict | None:
        return read_json(self._done_path(job))

    def lease_of(self, job: str) -> Lease | None:
        data = read_json(self._lease_path(job))
        return None if data is None else Lease.from_dict(data)

    def tomb_fences(self, job: str) -> list[int]:
        prefix = f"{job}."
        out = []
        for p in (self.root / "tombs").glob(f"{job}.*.json"):
            tail = p.name[len(prefix):-len(".json")]
            if tail.isdigit():
                out.append(int(tail))
        return sorted(out)

    def next_fence(self, job: str) -> int:
        """The fence the next successful claim of ``job`` would carry."""
        fences = self.tomb_fences(job)
        return (fences[-1] if fences else 0) + 1

    # -- the protocol ---------------------------------------------------
    def _steal(self, job: str, lease: Lease) -> bool:
        """Tombstone an expired lease; True iff *we* won the rename."""
        try:
            os.rename(self._lease_path(job), self._tomb_path(job, lease.fence))
        except FileNotFoundError:
            return False  # someone else stole (or the holder completed)
        return True

    def reclaim_expired(self) -> list[str]:
        """Tombstone every expired lease; returns the reclaimed job ids.

        Claiming does this lazily per job, so calling this is optional —
        it exists so a monitor (or ``campaign status``) can surface
        reclamation eagerly and so tests can assert on it."""
        now = self.clock()
        reclaimed = []
        for job in self.jobs():
            if self.is_done(job):
                continue
            lease = self.lease_of(job)
            if lease is not None and lease.expired(now) and self._steal(job, lease):
                reclaimed.append(job)
        return reclaimed

    def claim(self, owner: str, ttl: float, job: str | None = None) -> Claim | None:
        """Claim one available job for ``owner``; None when nothing is left.

        Scans jobs in sorted id order (or just ``job``); for each: skip if
        done; steal its lease if expired; then race to create the lease
        file.  The returned :class:`Claim` carries the fencing token every
        record written under it must be tagged with."""
        now = self.clock()
        for candidate in [job] if job is not None else self.jobs():
            if self.is_done(candidate):
                continue
            held = self.lease_of(candidate)
            if held is not None:
                if not held.expired(now):
                    continue
                self._steal(candidate, held)
                # Fall through: the lease file is gone (by us or a rival);
                # the O_EXCL create below decides who gets the new claim.
            lease = Lease(
                job=candidate,
                owner=owner,
                fence=self.next_fence(candidate),
                ttl=float(ttl),
                granted_at=now,
                heartbeat_at=now,
            )
            if create_exclusive(self._lease_path(candidate), lease.to_dict()):
                return Claim(
                    job=candidate, payload=self.payload(candidate), lease=lease
                )
        return None

    def _verify(self, claim: Claim) -> Lease:
        """The claim's lease as currently on disk, or :class:`LeaseLost`."""
        if self.is_done(claim.job):
            raise LeaseLost(
                f"{claim.job}: already completed under fence "
                f"{self.done_fence(claim.job)} (we held {claim.lease.fence})"
            )
        held = self.lease_of(claim.job)
        if (
            held is None
            or held.owner != claim.lease.owner
            or held.fence != claim.lease.fence
        ):
            raise LeaseLost(
                f"{claim.job}: lease stolen "
                f"(held fence {claim.lease.fence}, current "
                f"{'none' if held is None else held.fence})"
            )
        return held

    def heartbeat(self, claim: Claim) -> Claim:
        """Refresh the claim's liveness window; returns the updated claim.

        Raises :class:`LeaseLost` when the lease was stolen — the worker
        must stop: any record it writes from here on carries a superseded
        fence and will be rejected by the merge."""
        self._verify(claim)
        lease = Lease(
            job=claim.lease.job,
            owner=claim.lease.owner,
            fence=claim.lease.fence,
            ttl=claim.lease.ttl,
            granted_at=claim.lease.granted_at,
            heartbeat_at=self.clock(),
        )
        write_atomic(self._lease_path(claim.job), lease.to_dict())
        return Claim(job=claim.job, payload=claim.payload, lease=lease)

    def complete(self, claim: Claim, records: int = 0) -> None:
        """Mark the job done under the claim's fence and drop the lease."""
        self._verify(claim)
        write_atomic(
            self._done_path(claim.job),
            {
                "job": claim.job,
                "fence": claim.lease.fence,
                "owner": claim.lease.owner,
                "records": int(records),
                "completed_at": self.clock(),
            },
        )
        try:
            os.remove(self._lease_path(claim.job))
        except FileNotFoundError:
            pass

    def release(self, claim: Claim) -> None:
        """Voluntarily give the job back (tombstoned, so the fence bumps)."""
        try:
            self._verify(claim)
        except LeaseLost:
            return
        self._steal(claim.job, claim.lease)

    # -- introspection --------------------------------------------------
    def state_of(self, job: str) -> str:
        """``done`` / ``leased`` / ``expired`` / ``pending``."""
        if self.is_done(job):
            return "done"
        lease = self.lease_of(job)
        if lease is None:
            return "pending"
        return "expired" if lease.expired(self.clock()) else "leased"

    def table(self) -> dict[str, dict]:
        """Snapshot of every job's state, lease, and fence history."""
        out: dict[str, dict] = {}
        for job in self.jobs():
            entry: dict = {
                "state": self.state_of(job),
                "reclaims": len(self.tomb_fences(job)),
            }
            lease = self.lease_of(job)
            if lease is not None:
                entry["lease"] = lease.to_dict()
            done = self.done_info(job)
            if done is not None:
                entry["done"] = done
            out[job] = entry
        return out
