"""Smart parameter search — the second §4.2 automation, implemented.

The paper's harness explores the Table-2 space *exhaustively* (up to 988
GPU-hours per benchmark) and §4.2 proposes "smart search/optimization
techniques (genetic algorithms, Bayesian Optimization) to reduce parameter
exploration costs".  This module provides two budgeted strategies over the
same :class:`~repro.harness.sweep.SweepPoint` space:

* :func:`random_search` — the standard strong baseline: sample the grid
  uniformly without replacement.
* :func:`evolutionary_search` — a (μ+λ) evolutionary loop: keep the best
  configurations under the error budget, mutate one axis at a time toward
  grid neighbours, and resample when stuck.

Both return the full :class:`~repro.harness.database.ResultsDB` so results
remain queryable exactly like an exhaustive sweep's, plus the best record
found.  The objective matches the paper's selection rule: maximize speedup
subject to ``error <= max_error``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.harness.database import ResultsDB
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.harness.sweep import SweepPoint, table2_space


@dataclass
class SearchResult:
    """Outcome of a budgeted search."""

    best: RunRecord | None
    db: ResultsDB
    evaluations: int

    @property
    def best_speedup(self) -> float:
        return self.best.reported_speedup if self.best else 0.0


def _objective(record: RunRecord, max_error: float) -> float:
    """Paper selection rule: speedup if under budget, else -error."""
    if not record.feasible:
        return -float("inf")
    if record.error <= max_error:
        return record.reported_speedup
    return -record.error


def random_search(
    runner: ExperimentRunner,
    app: str,
    device: str | DeviceSpec,
    technique: str,
    budget: int = 20,
    max_error: float = 0.10,
    threshold_scale: float = 1.0,
    seed: int = 7,
    space: list[SweepPoint] | None = None,
    max_workers: int = 1,
    checkpoint: str | None = None,
) -> SearchResult:
    """Uniform sampling of the Table-2 grid without replacement.

    The whole sample is known up front, so with ``max_workers > 1`` it is
    evaluated as one batch through the parallel executor (workers rebuild
    the runner from its problems/seed); results are identical to the serial
    path because the simulation is deterministic per seed."""
    rng = np.random.default_rng(seed)
    points = list(
        space
        if space is not None
        else table2_space(technique, device, thinned=False,
                          threshold_scale=threshold_scale)
    )
    rng.shuffle(points)
    sample = points[: int(budget)]
    db = ResultsDB()
    if max_workers > 1 or checkpoint is not None:
        from repro.harness.executor import run_sweep_parallel

        report = run_sweep_parallel(
            app, device, sample,
            problems=runner.problems, seed=runner.seed,
            max_workers=max_workers, checkpoint=checkpoint,
        )
        records = report.records
    else:
        records = [runner.run_point(app, device, pt) for pt in sample]
    best, best_score = None, -float("inf")
    for rec in records:
        db.add(rec)
        score = _objective(rec, max_error)
        if score > best_score:
            best, best_score = rec, score
    return SearchResult(best=best, db=db, evaluations=len(db))


def _axes_of(technique: str) -> list[str]:
    return {
        "taf": ["hsize", "psize", "threshold"],
        "iact": ["tsize", "threshold", "tperwarp"],
    }.get(technique, [])


def _neighbors(point: SweepPoint, space: list[SweepPoint]) -> list[SweepPoint]:
    """Grid neighbours: points differing from ``point`` in exactly one axis
    (including level and items-per-thread)."""
    out = []
    for cand in space:
        if cand.technique != point.technique:
            continue
        # Diff over the UNION of key sets: perfo kinds carry different keys
        # (skip/herded vs skip_percent), and iterating only cand's keys
        # undercounts — and makes neighbourhood asymmetric — whenever one
        # point's params are a subset of the other's.
        keys = set(cand.params) | set(point.params)
        diffs = sum(
            cand.params.get(k) != point.params.get(k) for k in keys
        )
        diffs += cand.level != point.level
        diffs += cand.items_per_thread != point.items_per_thread
        if diffs == 1:
            out.append(cand)
    return out


def evolutionary_search(
    runner: ExperimentRunner,
    app: str,
    device: str | DeviceSpec,
    technique: str,
    budget: int = 30,
    max_error: float = 0.10,
    threshold_scale: float = 1.0,
    population: int = 3,
    seed: int = 7,
    space: list[SweepPoint] | None = None,
    engine: "BatchEngine | None" = None,
    max_workers: int = 1,
) -> SearchResult:
    """(μ+λ) evolutionary search over the Table-2 grid.

    Seeds ``population`` random configurations, then evolves one
    *generation* at a time: the ``population`` fittest survivors each
    propose an offspring mutated along one grid axis (dead ends resample a
    fresh random point), and the whole generation is evaluated as one
    batch.  Every generation's proposals are drawn from the RNG *before*
    any of them is evaluated, so the evaluated point sequence depends only
    on the seed — ``max_workers > 1`` (or an explicit ``engine``) fans each
    generation across the batch layer and returns records identical to the
    serial loop.  Typically reaches the exhaustive-search optimum's
    neighbourhood in a small fraction of the grid's size (see the ablation
    bench).
    """
    rng = np.random.default_rng(seed)
    points = list(
        space
        if space is not None
        else table2_space(technique, device, thinned=False,
                          threshold_scale=threshold_scale)
    )
    db = ResultsDB()
    seen: set[str] = set()
    if engine is None and max_workers > 1:
        from repro.harness.batch import BatchEngine

        engine = BatchEngine(
            problems=runner.problems, seed=runner.seed,
            max_workers=max_workers, runner=runner,
        )

    def eval_generation(pts: list[SweepPoint]) -> list[tuple[SweepPoint, RunRecord]]:
        pts = pts[: budget - len(db)]
        if not pts:
            return []
        if engine is not None:
            from repro.harness.batch import BatchJob

            recs = engine.run_jobs([BatchJob(app, device, p) for p in pts])
        else:
            recs = [runner.run_point(app, device, p) for p in pts]
        db.add(list(recs))
        return list(zip(pts, recs))

    def propose(parents: list[SweepPoint], want: int) -> list[SweepPoint]:
        """Draw one generation of unseen offspring (marked seen now, so a
        generation never proposes the same point twice)."""
        offspring: list[SweepPoint] = []
        for i in range(want):
            parent = parents[i % len(parents)] if parents else None
            nbrs = (
                [n for n in _neighbors(parent, points) if n.label() not in seen]
                if parent is not None
                else []
            )
            if nbrs:
                nxt = nbrs[int(rng.integers(len(nbrs)))]
            else:
                fresh = [p for p in points if p.label() not in seen]
                if not fresh:
                    break
                nxt = fresh[int(rng.integers(len(fresh)))]
            seen.add(nxt.label())
            offspring.append(nxt)
        return offspring

    # Seed generation.
    seeds: list[SweepPoint] = []
    for idx in rng.permutation(len(points))[: int(population)]:
        pt = points[int(idx)]
        if pt.label() not in seen:
            seen.add(pt.label())
            seeds.append(pt)
    elite: list[tuple[float, SweepPoint, RunRecord]] = [
        (_objective(rec, max_error), pt, rec)
        for pt, rec in eval_generation(seeds)
    ]

    while len(db) < budget and elite:
        elite.sort(key=lambda t: -t[0])
        elite = elite[: int(population)]
        gen = propose(
            [pt for _, pt, _ in elite],
            min(int(population), budget - len(db)),
        )
        if not gen:
            break
        elite.extend(
            (_objective(rec, max_error), pt, rec)
            for pt, rec in eval_generation(gen)
        )

    best = db.best_speedup(max_error=max_error)
    if best is None and len(db):
        best = max(db.query(feasible=None), key=lambda r: _objective(r, max_error))
    return SearchResult(best=best, db=db, evaluations=len(db))
