"""Smart parameter search — the second §4.2 automation, implemented.

The paper's harness explores the Table-2 space *exhaustively* (up to 988
GPU-hours per benchmark) and §4.2 proposes "smart search/optimization
techniques (genetic algorithms, Bayesian Optimization) to reduce parameter
exploration costs".  This module provides two budgeted strategies over the
same :class:`~repro.harness.sweep.SweepPoint` space:

* :func:`random_search` — the standard strong baseline: sample the grid
  uniformly without replacement.
* :func:`evolutionary_search` — a steady-state (μ+λ) evolutionary loop:
  keep the best configurations under the error budget, mutate one axis at
  a time toward grid neighbours, and resample when stuck.

Both evaluate through the batch layer when given ``max_workers > 1`` or a
persistent :class:`~repro.harness.batch.BatchEngine`.  The evolutionary
loop is *streaming*: it keeps ``population`` evaluations in flight on a
:class:`~repro.harness.batch.StreamSession` and proposes the next
offspring the moment a result is consumed, instead of barriering per
generation — and because the session yields results strictly in
submission order, the evaluated point sequence depends only on the seed,
so serial and parallel runs produce identical records.

Both return the full :class:`~repro.harness.database.ResultsDB` so results
remain queryable exactly like an exhaustive sweep's, plus the best record
found.  The objective matches the paper's selection rule: maximize speedup
subject to ``error <= max_error``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.harness.database import ResultsDB
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.harness.sweep import SweepPoint, table2_space


@dataclass
class SearchResult:
    """Outcome of a budgeted search."""

    best: RunRecord | None
    db: ResultsDB
    evaluations: int

    @property
    def best_speedup(self) -> float:
        return self.best.reported_speedup if self.best else 0.0


def _objective(record: RunRecord, max_error: float) -> float:
    """Paper selection rule: speedup if under budget, else -error."""
    if not record.feasible:
        return -float("inf")
    if record.error <= max_error:
        return record.reported_speedup
    return -record.error


def random_search(
    runner: ExperimentRunner,
    app: str,
    device: str | DeviceSpec,
    technique: str,
    budget: int = 20,
    max_error: float = 0.10,
    threshold_scale: float = 1.0,
    seed: int = 7,
    space: list[SweepPoint] | None = None,
    max_workers: int = 1,
    checkpoint: str | None = None,
    engine: "BatchEngine | None" = None,
    order: bool = False,
) -> SearchResult:
    """Uniform sampling of the Table-2 grid without replacement.

    The whole sample is known up front, so with ``max_workers > 1`` (or an
    ``engine``) it is evaluated as one batch through the parallel executor;
    results are identical to the serial path because the simulation is
    deterministic per seed.  ``engine`` reuses a persistent
    :class:`~repro.harness.batch.BatchEngine` — its warm worker pool and
    session record cache — instead of spawning a pool for this call.
    ``order=True`` ranks the sample with the incremental surrogate
    (:class:`repro.harness.pruning.Surrogate`) before dispatch, so the
    likely-Pareto points evaluate first — the record *set* is unchanged."""
    rng = np.random.default_rng(seed)
    points = list(
        space
        if space is not None
        else table2_space(technique, device, thinned=False,
                          threshold_scale=threshold_scale)
    )
    rng.shuffle(points)
    sample = points[: int(budget)]
    db = ResultsDB()
    if engine is not None or max_workers > 1 or checkpoint is not None or order:
        from repro.harness.config import SweepConfig
        from repro.harness.executor import run_sweep_parallel

        report = run_sweep_parallel(
            app, device, sample,
            problems=runner.problems, seed=runner.seed,
            config=SweepConfig(
                workers=max_workers, checkpoint=checkpoint, order=order
            ),
            engine=engine,
        )
        records = report.records
    else:
        records = [runner.run_point(app, device, pt) for pt in sample]
    best, best_score = None, -float("inf")
    for rec in records:
        db.add(rec)
        score = _objective(rec, max_error)
        if score > best_score:
            best, best_score = rec, score
    return SearchResult(best=best, db=db, evaluations=len(db))


def _axes_of(technique: str) -> list[str]:
    return {
        "taf": ["hsize", "psize", "threshold"],
        "iact": ["tsize", "threshold", "tperwarp"],
    }.get(technique, [])


def _neighbors(point: SweepPoint, space: list[SweepPoint]) -> list[SweepPoint]:
    """Grid neighbours: points differing from ``point`` in exactly one axis
    (including level and items-per-thread)."""
    out = []
    for cand in space:
        if cand.technique != point.technique:
            continue
        # Diff over the UNION of key sets: perfo kinds carry different keys
        # (skip/herded vs skip_percent), and iterating only cand's keys
        # undercounts — and makes neighbourhood asymmetric — whenever one
        # point's params are a subset of the other's.
        keys = set(cand.params) | set(point.params)
        diffs = sum(
            cand.params.get(k) != point.params.get(k) for k in keys
        )
        diffs += cand.level != point.level
        diffs += cand.items_per_thread != point.items_per_thread
        if diffs == 1:
            out.append(cand)
    return out


class _SerialFeed:
    """Minimal in-process stand-in for a :class:`StreamSession`.

    Jobs queue on ``put`` and evaluate lazily when consumed — the same
    submission-order semantics the parallel session provides — so the
    steady-state loop below is one code path at any worker count."""

    def __init__(self, runner: ExperimentRunner) -> None:
        self._runner = runner
        self._queue: deque = deque()
        self._ticket = 0

    def put(self, job) -> int:
        self._queue.append(job)
        ticket = self._ticket
        self._ticket += 1
        return ticket

    def __iter__(self):
        return self

    def __next__(self):
        if not self._queue:
            raise StopIteration
        job = self._queue.popleft()
        record = self._runner.run_point(job.app, job.device, job.point, site=job.site)
        ticket = self._ticket - len(self._queue) - 1
        return ticket, record

    def close(self) -> None:
        self._queue.clear()


def evolutionary_search(
    runner: ExperimentRunner,
    app: str,
    device: str | DeviceSpec,
    technique: str,
    budget: int = 30,
    max_error: float = 0.10,
    threshold_scale: float = 1.0,
    population: int = 3,
    seed: int = 7,
    space: list[SweepPoint] | None = None,
    engine: "BatchEngine | None" = None,
    max_workers: int = 1,
    order: bool = False,
) -> SearchResult:
    """Steady-state (μ+λ) evolutionary search over the Table-2 grid.

    Seeds ``population`` random configurations and then keeps
    ``population`` evaluations in flight: each time a result is consumed
    it joins the elite (the ``population`` fittest so far), and *one* new
    offspring is proposed immediately — mutated along one grid axis from
    an elite parent, resampling a fresh random point at dead ends — until
    ``budget`` proposals have been made.  There is no per-generation
    barrier: with ``max_workers > 1`` (or a persistent ``engine``) the
    proposals ride a :class:`~repro.harness.batch.StreamSession`, whose
    strict submission-order consumption makes the evaluated point sequence
    a function of the seed alone — serial and parallel runs produce
    identical records.

    ``order=True`` makes mutation surrogate-guided: once the incremental
    :class:`~repro.harness.pruning.Surrogate` has enough observations, the
    offspring is the *best-predicted* unseen neighbour of its parent
    instead of a uniform draw, converging in fewer evaluations.  The
    proposal sequence is still deterministic at any worker count.
    """
    rng = np.random.default_rng(seed)
    points = list(
        space
        if space is not None
        else table2_space(technique, device, thinned=False,
                          threshold_scale=threshold_scale)
    )
    db = ResultsDB()
    seen: set[str] = set()
    owned_engine = None
    if engine is None and max_workers > 1:
        from repro.harness.batch import BatchEngine
        from repro.harness.config import SweepConfig

        engine = owned_engine = BatchEngine(
            config=SweepConfig(workers=max_workers), runner=runner
        )

    surrogate = None
    if order:
        from repro.harness.pruning import Surrogate

        surrogate = Surrogate()

    def propose_one(parent: SweepPoint | None) -> SweepPoint | None:
        """One unseen offspring of ``parent`` (or a fresh random point)."""
        nbrs = (
            [n for n in _neighbors(parent, points) if n.label() not in seen]
            if parent is not None
            else []
        )
        if nbrs:
            if surrogate is not None and surrogate.observed >= surrogate.MIN_FIT:
                # max() keeps the first of tied candidates, so the pick is
                # deterministic in the (deterministic) neighbour order.
                nxt = max(
                    nbrs, key=lambda n: surrogate.score(n, max_error)
                )
            else:
                nxt = nbrs[int(rng.integers(len(nbrs)))]
        else:
            fresh = [p for p in points if p.label() not in seen]
            if not fresh:
                return None
            nxt = fresh[int(rng.integers(len(fresh)))]
        seen.add(nxt.label())
        return nxt

    from repro.harness.batch import BatchJob

    session = (
        engine.open_stream() if engine is not None else _SerialFeed(runner)
    )
    pending: dict[int, SweepPoint] = {}
    elite: list[tuple[float, SweepPoint, RunRecord]] = []
    proposals = 0
    #: Round-robin parent cursor: consecutive offspring come from different
    #: elite members, like the generational loop's i % len(parents).
    child_idx = 0
    try:
        # Seed wave: population distinct random points, all in flight.
        for idx in rng.permutation(len(points))[: int(population)]:
            if proposals >= budget:
                break
            pt = points[int(idx)]
            if pt.label() in seen:
                continue
            seen.add(pt.label())
            pending[session.put(BatchJob(app, device, pt))] = pt
            proposals += 1
        # Steady state: consume strictly in submission order; each consumed
        # result funds exactly one new proposal.
        for ticket, rec in session:
            pt = pending.pop(ticket)
            db.add(rec)
            if surrogate is not None:
                surrogate.observe(pt, rec)
            elite.append((_objective(rec, max_error), pt, rec))
            elite.sort(key=lambda t: -t[0])
            elite = elite[: int(population)]
            if proposals < budget:
                parent = elite[child_idx % len(elite)][1] if elite else None
                child_idx += 1
                nxt = propose_one(parent)
                if nxt is not None:
                    pending[session.put(BatchJob(app, device, nxt))] = nxt
                    proposals += 1
    finally:
        session.close()
        if owned_engine is not None:
            owned_engine.close()

    best = db.best_speedup(max_error=max_error)
    if best is None and len(db):
        best = max(db.query(feasible=None), key=lambda r: _objective(r, max_error))
    return SearchResult(best=best, db=db, evaluations=len(db))
