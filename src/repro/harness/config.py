"""Unified sweep configuration: one frozen policy object for every executor.

PR 1 and PR 3 grew the sweep entry points organically: by PR 4,
``ExperimentRunner.run_sweep``, :func:`repro.harness.executor.run_sweep_parallel`,
:func:`repro.harness.batch.run_batch`, and the CLI each accepted their own
subset of ~15 loose keyword arguments (``parallel`` vs ``max_workers``,
``progress`` typed ``bool`` in one place and ``bool | Callable`` in another,
``sanitize`` reachable from ``run_point`` but not from sweeps).  This module
collapses that execution policy into one frozen :class:`SweepConfig` that is
threaded end-to-end — runner, executor, batch layer, engine, CLI — so a
policy decided once holds everywhere.

The old keywords keep working through :func:`resolve_config`: entry points
declare them with the :data:`UNSET` sentinel, and any keyword actually
passed is overlaid onto the config with a :class:`DeprecationWarning`
naming the replacement field.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Callable

#: Wall-clock one adaptively-sized chunk should cost once a job group's
#: throughput is known (see :class:`repro.harness.batch.AdaptiveChunker`).
TARGET_CHUNK_SECONDS = 0.8


class _Unset:
    """Sentinel distinguishing "kwarg not passed" from any real value."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UNSET"


UNSET = _Unset()


@dataclass(frozen=True)
class SweepConfig:
    """Execution policy for one sweep / batch / engine session.

    Identity of the work (app, device, points, problems, seed) stays on the
    call; *how* the work runs lives here.  Instances are frozen — derive
    variants with :meth:`replace` — so a config shared by an engine and
    several calls cannot drift mid-session.
    """

    #: Process-pool workers; ``<= 1`` runs in-process (byte-identical to
    #: the legacy serial path).
    workers: int = 1
    #: Points per worker chunk; ``None`` sizes chunks adaptively from
    #: observed throughput.
    chunk_size: int | None = None
    #: Wall-clock target per adaptive chunk.
    target_chunk_seconds: float = TARGET_CHUNK_SECONDS
    #: JSONL / ``.jsonl.gz`` file records stream into and resume from.
    checkpoint: str | Path | None = None
    #: Retries per point on unexpected worker errors (each on a freshly
    #: rebuilt runner).
    retries: int = 1
    #: ``True`` for a stderr line per chunk, or a callable receiving
    #: :class:`~repro.harness.reporting.SweepProgress` — accepted uniformly
    #: by every entry point, serial paths included.
    progress: bool | Callable = False
    #: Static preflight: ``True`` for the stock analyzer, or a callable
    #: ``(app, device, point, site=...) -> RunRecord | None``.
    preflight: bool | Callable = False
    #: Run every point under ApproxSan, storing the violation report in
    #: ``record.extra["approxsan"]`` (timings unaffected).
    sanitize: bool = False
    #: Resolve each unique (app, device) baseline once in the parent and
    #: ship it to workers.
    share_baselines: bool = True
    #: Seconds a persistent engine pool may sit idle before its worker
    #: processes are reaped (``None`` keeps them until ``close()``).
    idle_ttl: float | None = None
    #: Subsumption-lattice pruning for sweeps: ``True`` prunes un-evaluated
    #: descendants of points violating the default 10% QoI bound; a float
    #: sets the bound.  See :mod:`repro.harness.pruning`.
    prune: bool | float = False
    #: Frontier ordering: ``True`` orders pending work with the incremental
    #: surrogate regressor; a callable receives the pending job list and
    #: returns it reordered (must be a permutation).
    order: bool | Callable = False
    #: Content-hash record cache shared across campaigns: a
    #: :class:`repro.harness.pruning.VariantCache` instance, or a path to
    #: persist one as JSONL.
    variant_cache: object | str | Path | None = None

    def replace(self, **changes) -> "SweepConfig":
        """A copy with ``changes`` applied (the dataclasses idiom)."""
        return replace(self, **changes)

    def merged(self, other: "SweepConfig | None") -> "SweepConfig":
        """Overlay ``other``'s non-default fields onto this config."""
        if other is None:
            return self
        changes = {
            f.name: getattr(other, f.name)
            for f in fields(other)
            if getattr(other, f.name) != f.default
        }
        return self.replace(**changes) if changes else self


#: Legacy keyword -> SweepConfig field, for entry points whose old name
#: differs from the unified one.
LEGACY_ALIASES = {"max_workers": "workers", "parallel": "workers"}

#: Every keyword the shimmed entry points may still receive loosely: the
#: config fields themselves plus the renamed aliases.  ``resolve_config``
#: rejects anything else, so the ``**legacy`` catch-alls the entry points
#: now use keep the typo protection their old explicit signatures had.
LEGACY_KEYWORDS = frozenset(
    f.name for f in fields(SweepConfig)
) | frozenset(LEGACY_ALIASES)

#: Appended to every shim warning.  The loose keywords have been
#: deprecated since PR 5; one release after the typed request/response
#: facade (PR 10) they go away entirely.
REMOVAL_NOTE = (
    "these shims will be removed in repro 2.0 — "
    "see README \"Migrating to request objects\""
)


def resolve_config(
    config: SweepConfig | None,
    caller: str,
    *,
    stacklevel: int = 3,
    **legacy,
) -> SweepConfig:
    """Build the effective :class:`SweepConfig` for a shimmed entry point.

    This is the *single* shim path: every entry point that still accepts
    the PR-1/PR-3/PR-5 loose keywords (``run_batch``, ``BatchEngine``,
    ``run_sweep_parallel``, ``ExperimentRunner.run_sweep``) forwards its
    ``**legacy`` catch-all here.  Any keyword actually passed (the entry
    points' old explicit parameters defaulted to :data:`UNSET`; catch-all
    callers just pass what they got) is overlaid onto ``config`` (or a
    default config) after one :class:`DeprecationWarning` naming the
    replacement field and the removal deadline.  Unknown keywords raise
    ``TypeError`` exactly like a mistyped parameter name used to.  With no
    legacy keywords passed, ``config`` is returned as-is (or the default
    policy when ``None``).
    """
    passed = {k: v for k, v in legacy.items() if v is not UNSET}
    if not passed:
        return config if config is not None else SweepConfig()
    unknown = sorted(set(passed) - LEGACY_KEYWORDS)
    if unknown:
        raise TypeError(
            f"{caller}: unexpected keyword argument(s) {', '.join(unknown)}"
        )
    renames = {k: LEGACY_ALIASES.get(k, k) for k in passed}
    hints = ", ".join(
        f"{old}= (use SweepConfig({new}=...))" for old, new in sorted(renames.items())
    )
    warnings.warn(
        f"{caller}: loose keyword(s) are deprecated — {hints}; "
        f"pass config=SweepConfig(...) instead ({REMOVAL_NOTE})",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    base = config if config is not None else SweepConfig()
    mapped = {renames[k]: v for k, v in passed.items()}
    if "workers" in mapped:
        mapped["workers"] = max(1, int(mapped["workers"] or 1))
    return base.replace(**mapped)
