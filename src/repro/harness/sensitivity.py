"""Region sensitivity analysis — the §4.2 automation, implemented.

The paper's limitation section proposes integrating the harness with
sensitivity-analysis tools (ASAC [42], Puppeteer [37], [53]) "to find code
regions amenable to approximation".  This module implements the standard
instrument: perturb one candidate region's outputs with controlled relative
noise (``Technique.NOISE``), measure the application's QoI response, and
rank the regions — low sensitivity ⇒ safe approximation target.

The reported score is the *amplification factor*: QoI error divided by the
injected relative noise.  A region with amplification ≪ 1 damps
perturbations (approximate it!); amplification ≫ 1 means errors are
magnified by downstream computation (MiniFE's SpMV inside CG is the
canonical example — locally small errors propagate through the Krylov
recurrences).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.common import Benchmark
from repro.gpusim.device import DeviceSpec
from repro.harness.metrics import error


@dataclass(frozen=True)
class SiteSensitivity:
    """Sensitivity report for one approximation site."""

    site: str
    #: Injected relative output noise (sigma of the multiplicative term).
    rel_sigma: float
    #: QoI error (app's metric, as a fraction) caused by the injection.
    qoi_error: float

    @property
    def amplification(self) -> float:
        """QoI error per unit of injected relative noise."""
        return self.qoi_error / self.rel_sigma if self.rel_sigma else float("inf")

    @property
    def amenable(self) -> bool:
        """Rule of thumb: a damping region is an approximation target."""
        return self.amplification < 1.0


def analyze_sensitivity(
    app: Benchmark,
    device: str | DeviceSpec = "v100_small",
    rel_sigma: float = 0.05,
    items_per_thread: int | None = None,
    seed: int = 2023,
) -> list[SiteSensitivity]:
    """Rank an application's sites by QoI sensitivity to output noise.

    Runs the accurate baseline once, then one perturbed run per site, and
    returns reports sorted most-amenable (least sensitive) first — the
    order in which a user should spend their approximation budget.
    """
    ipt = items_per_thread or app.baseline_items_per_thread or 1
    baseline = app.run(device, regions=None, items_per_thread=ipt, seed=seed)
    out: list[SiteSensitivity] = []
    for site in app.sites():
        regions = app.build_regions(
            "noise", site=site.name, rel_sigma=rel_sigma, seed=seed
        )
        res = app.run(device, regions, items_per_thread=ipt, seed=seed)
        qoi_err = error(app.error_metric, baseline.qoi, res.qoi)
        out.append(SiteSensitivity(site.name, rel_sigma, qoi_err))
    out.sort(key=lambda s: s.amplification)
    return out


def format_sensitivity(reports: list[SiteSensitivity]) -> str:
    """Human-readable ranking table."""
    lines = [f"{'site':<24} {'QoI err %':>10} {'amplify':>9}  verdict"]
    for r in reports:
        verdict = "approximate" if r.amenable else "protect"
        lines.append(
            f"{r.site:<24} {100 * r.qoi_error:10.4f} {r.amplification:9.3f}  {verdict}"
        )
    return "\n".join(lines)
