"""Heterogeneous batch evaluation: one adaptive parallel engine above ``run_point``.

PR 1 parallelized *single* sweeps — one (app, device) pair per call, a fresh
process pool per call, every worker privately recomputing every baseline it
touches, and a fixed 16-point chunk size whether a point costs 4 ms
(Blackscholes) or 250 ms (LULESH).  The paper's actual hot path is wider
than one sweep: a figure regeneration is a ``device × app × technique ×
point`` grid, an evolutionary-search generation is a population of
independent points, and the Fig 6/Fig 7 grids overlap on their LULESH
points.  This module is the single execution layer all of those route
through:

* :func:`run_batch` accepts arbitrary heterogeneous :class:`BatchJob`
  tuples — any mix of apps, devices, points, and sites in one call — and
  fans them out over one process pool.
* Unique (app, device) baselines are resolved **once in the parent** and
  shipped to workers through the pool initializer, so the old
  N-workers × M-pairs redundant baseline runs disappear (counted and
  reported, so tests can assert "exactly once").
* Chunks are sized by a throughput feedback controller
  (:class:`AdaptiveChunker`): each (app, device) group's observed
  points/sec decides how many of its points the next chunk carries, so
  long-running apps get small chunks (fast failure recovery, good load
  balance) and cheap apps get large ones (amortized dispatch).
* Identical jobs are deduplicated through the checkpoint label space
  ``(app, device, point label)`` — within a batch, across callers via
  :class:`BatchEngine`'s session cache, and across runs via the JSONL
  checkpoint.

The serial path (``max_workers=1``) runs the same code in-process and
produces byte-identical records (the simulation is deterministic per
seed), so every caller keeps a ``parallel=0`` escape hatch that matches
the old behaviour exactly.
"""

from __future__ import annotations

import sys
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.gpusim.device import DeviceSpec, get_device
from repro.harness.database import CheckpointWriter, ResultsDB
from repro.harness.reporting import SweepProgress, format_progress
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.harness.sweep import SweepPoint

#: Chunk size used for a group before any throughput has been observed —
#: deliberately small so the controller gets feedback after little work.
INITIAL_CHUNK_SIZE = 2
#: Wall-clock one chunk should cost once a group's rate is known.
TARGET_CHUNK_SECONDS = 0.8
MIN_CHUNK_SIZE = 1
MAX_CHUNK_SIZE = 64


def _default_factory(problems: dict | None, seed: int) -> ExperimentRunner:
    return ExperimentRunner(problems=problems, seed=seed)


@dataclass(frozen=True)
class BatchJob:
    """One unit of work: evaluate ``point`` for ``app`` on ``device``."""

    app: str
    device: str | DeviceSpec
    point: SweepPoint
    site: str | None = None


@dataclass
class BatchReport:
    """Outcome of one :func:`run_batch` invocation."""

    #: One record per input job, in job order (checkpointed + fresh; a
    #: deduplicated slot shares its record with the slot it collapsed into).
    records: list[RunRecord]
    #: Points actually simulated by this invocation.
    evaluated: int
    #: Job slots satisfied from the checkpoint without running.
    skipped: int
    #: Duplicate job slots collapsed within this batch.
    deduped: int = 0
    #: Points recorded as infeasible by the static preflight, unsimulated.
    pruned: int = 0
    #: Unique (app, device) baselines computed in the parent for sharing.
    baseline_runs: int = 0
    #: Baselines computed inside pool workers (0 when sharing is on).
    worker_baseline_runs: int = 0
    elapsed: float = 0.0
    checkpoint: str | None = None
    extra: dict = field(default_factory=dict)

    @property
    def feasible(self) -> int:
        return sum(1 for r in self.records if r.feasible)

    @property
    def infeasible(self) -> int:
        return len(self.records) - self.feasible


class AdaptiveChunker:
    """Feedback controller sizing chunks from observed points/sec.

    Each (app, device) group keeps an exponentially-smoothed throughput
    estimate; the next chunk for a group carries
    ``rate × target_seconds`` points, clamped to
    [``min_size``, ``max_size``].  Until a group has been observed it gets
    ``initial`` points, so the first measurement arrives quickly even for
    slow apps."""

    def __init__(
        self,
        target_seconds: float = TARGET_CHUNK_SECONDS,
        initial: int = INITIAL_CHUNK_SIZE,
        min_size: int = MIN_CHUNK_SIZE,
        max_size: int = MAX_CHUNK_SIZE,
        smoothing: float = 0.5,
    ) -> None:
        self.target_seconds = target_seconds
        self.initial = initial
        self.min_size = min_size
        self.max_size = max_size
        self.smoothing = smoothing
        self.rates: dict = {}
        #: (group, points, seconds) per observed chunk, for introspection.
        self.log: list[tuple] = []

    def next_size(self, group=None) -> int:
        rate = self.rates.get(group)
        if rate is None:
            return self.initial
        want = int(round(rate * self.target_seconds)) or 1
        return max(self.min_size, min(self.max_size, want))

    def observe(self, group, points: int, seconds: float) -> None:
        if points <= 0:
            return
        rate = points / max(seconds, 1e-9)
        prev = self.rates.get(group)
        self.rates[group] = (
            rate if prev is None
            else self.smoothing * rate + (1.0 - self.smoothing) * prev
        )
        self.log.append((group, points, seconds))


# ----------------------------------------------------------------------
# Retry wrapper.  Shared by the serial and worker paths.
def run_point_with_retry(
    runner,
    app: str,
    device: str | DeviceSpec,
    point: SweepPoint,
    site: str | None = None,
    retries: int = 1,
    rebuild: Callable[[], object] | None = None,
) -> RunRecord:
    """``runner.run_point`` hardened for sweep duty.

    ``run_point`` already records infeasible configurations gracefully;
    this catches everything else (harness bugs, partial region stats, a
    poisoned worker), retries ``retries`` times, and on persistent failure
    returns an infeasible record carrying the exception so one bad point
    cannot abort a 57k-point campaign.

    ``rebuild`` is called before each retry to replace the runner: an
    unexpected exception can leave the per-process runner's baseline/app
    caches or region state half-mutated, and retrying on the poisoned
    instance can fail for the wrong reason.  The callable should also
    update whatever slot the caller reuses across points (the worker
    global, a closure variable) so later points get the fresh instance."""
    last: Exception | None = None
    for attempt in range(max(0, retries) + 1):
        if attempt and rebuild is not None:
            try:
                runner = rebuild()
            except Exception:  # noqa: BLE001 — keep the old instance over losing the point
                pass
        try:
            return runner.run_point(app, device, point, site=site)
        except Exception as exc:  # noqa: BLE001 — sweep must survive anything
            last = exc
    return RunRecord(
        app=app,
        device=get_device(device).name,
        technique=point.technique,
        params=dict(point.params),
        level=point.level,
        items_per_thread=point.items_per_thread,
        feasible=False,
        note=(
            f"WorkerError after {retries + 1} attempts: "
            f"{type(last).__name__}: {last}"
        ),
    )


# ----------------------------------------------------------------------
# Worker side.  Each pool process builds one runner in its initializer,
# primes it with the baselines the parent shipped, and reuses it for every
# chunk; a retry rebuild replaces it (and re-primes) via the stored factory.
_BATCH_FACTORY: Callable | None = None
_BATCH_ARGS: tuple = ()
_BATCH_BASELINES: dict | None = None
_BATCH_RUNNER = None
_BATCH_RETIRED_COMPUTES = 0


def _build_worker_runner():
    runner = _BATCH_FACTORY(*_BATCH_ARGS)
    if _BATCH_BASELINES and hasattr(runner, "prime_baselines"):
        runner.prime_baselines(_BATCH_BASELINES)
    return runner


def _rebuild_batch_runner():
    """Replace a possibly-poisoned worker runner with a fresh, primed one."""
    global _BATCH_RUNNER, _BATCH_RETIRED_COMPUTES
    _BATCH_RETIRED_COMPUTES += getattr(_BATCH_RUNNER, "baseline_computes", 0)
    _BATCH_RUNNER = _build_worker_runner()
    return _BATCH_RUNNER


def _init_batch_worker(factory: Callable, args: tuple, baselines: dict | None) -> None:
    global _BATCH_FACTORY, _BATCH_ARGS, _BATCH_BASELINES
    _BATCH_FACTORY, _BATCH_ARGS, _BATCH_BASELINES = factory, args, baselines
    _rebuild_batch_runner()


def _worker_baseline_computes() -> int:
    return _BATCH_RETIRED_COMPUTES + getattr(_BATCH_RUNNER, "baseline_computes", 0)


def _run_batch_chunk(chunk: list[tuple], retries: int) -> tuple[list, float, int]:
    """Run one heterogeneous chunk; returns (records, seconds, baseline runs).

    ``seconds`` is measured in the worker so the adaptive controller sees
    compute time, not queue wait."""
    assert _BATCH_RUNNER is not None, "pool initializer did not run"
    before = _worker_baseline_computes()
    t0 = time.monotonic()
    records = [
        run_point_with_retry(
            _BATCH_RUNNER, app, device, point, site=site,
            retries=retries, rebuild=_rebuild_batch_runner,
        )
        for app, device, point, site in chunk
    ]
    return records, time.monotonic() - t0, _worker_baseline_computes() - before


# ----------------------------------------------------------------------
def run_batch(
    jobs: list[BatchJob],
    *,
    problems: dict | None = None,
    seed: int = 2023,
    max_workers: int | None = None,
    chunk_size: int | None = None,
    target_chunk_seconds: float = TARGET_CHUNK_SECONDS,
    checkpoint: str | Path | None = None,
    retries: int = 1,
    progress: bool | Callable[[SweepProgress], None] = False,
    preflight: bool | Callable[..., RunRecord | None] = False,
    share_baselines: bool = True,
    baseline_source: ExperimentRunner | None = None,
    serial_runner: ExperimentRunner | None = None,
    runner_factory: Callable[..., ExperimentRunner] | None = None,
    factory_args: tuple | None = None,
) -> BatchReport:
    """Execute heterogeneous ``jobs``, in parallel, resumably, deduplicated.

    Identity of a job is ``(app, device name, point label)`` — the same
    label space the PR-1 checkpoints use — so duplicate jobs within the
    batch evaluate once, and ``checkpoint`` (a JSONL or ``.jsonl.gz`` file,
    shared across any mix of apps and devices) satisfies previously-run
    jobs without simulating.  ``site`` overrides are honoured per job but
    are *not* part of the identity (records do not store them); do not mix
    site variants of the same point in one label space.

    With the default runner factory, each unique (app, device) baseline a
    pending job needs is resolved exactly once — in ``baseline_source`` /
    ``serial_runner`` if given, else a parent-local runner — and shipped to
    every worker through the pool initializer; ``share_baselines=False``
    restores the old behaviour of workers lazily computing their own.

    ``chunk_size`` fixes the shard size; the default sizes each group's
    chunks adaptively from observed throughput (:class:`AdaptiveChunker`,
    ``target_chunk_seconds`` of work per chunk).

    ``progress``/``preflight``/``retries``/``runner_factory`` behave as in
    :func:`repro.harness.executor.run_sweep_parallel`.
    """
    t0 = time.monotonic()
    factory = runner_factory or _default_factory
    args = factory_args if factory_args is not None else (problems, seed)
    default_runner = runner_factory is None

    # Resolve each job's identity once (device presets memoized by name).
    dev_names: dict[str, str] = {}
    slot_keys: list[tuple] = []
    for job in jobs:
        if isinstance(job.device, DeviceSpec):
            name = job.device.name
        else:
            name = dev_names.get(job.device)
            if name is None:
                name = get_device(job.device).name
                dev_names[job.device] = name
        slot_keys.append((job.app, name, job.point.label()))

    # Checkpointed jobs are trusted and never dispatched.
    done: dict[tuple, RunRecord] = {}
    if checkpoint is not None and Path(checkpoint).exists():
        index: dict[tuple, RunRecord] = {}
        for rec in ResultsDB.load(checkpoint):
            index[(rec.app, rec.device, SweepPoint.of_record(rec).label())] = rec
        for key in slot_keys:
            if key in index:
                done[key] = index[key]
    skipped = sum(1 for key in slot_keys if key in done)

    # In-batch dedupe: first job per identity wins, later slots share it.
    pending: OrderedDict[tuple, BatchJob] = OrderedDict()
    for job, key in zip(jobs, slot_keys):
        if key not in done and key not in pending:
            pending[key] = job
    deduped = (len(jobs) - skipped) - len(pending)

    # Static preflight: vet pending jobs in the parent (cheap — no
    # simulation) and divert the statically infeasible ones straight to the
    # results, so the pool only ever sees points that might run.
    pruned: list[tuple[tuple, RunRecord]] = []
    if preflight:
        if preflight is True:
            from repro.analysis.preflight import make_preflight

            preflight = make_preflight(problems)
        survivors: OrderedDict[tuple, BatchJob] = OrderedDict()
        for key, job in pending.items():
            rec = preflight(job.app, job.device, job.point, site=job.site)
            if rec is None:
                survivors[key] = job
            else:
                pruned.append((key, rec))
        pending = survivors

    # Baseline pre-resolution: every unique (app, device) among the pending
    # jobs, computed exactly once, shipped to workers via the initializer.
    baseline_runs = 0
    shipped: dict | None = None
    src: ExperimentRunner | None = None
    if share_baselines and default_runner and pending:
        src = baseline_source or serial_runner or ExperimentRunner(
            problems=problems, seed=seed
        )
        before = src.baseline_computes
        pairs: OrderedDict[tuple, BatchJob] = OrderedDict()
        for key, job in pending.items():
            pairs.setdefault((job.app, key[1]), job)
        for (_app, _dev), job in pairs.items():
            src.baseline(job.app, job.device)
        baseline_runs = src.baseline_computes - before
        shipped = {
            k: v for k, v in src.export_baselines().items()
            if (k[0], k[1]) in pairs
        }

    if progress is True:
        def report_progress(p: SweepProgress) -> None:
            print(format_progress(p), file=sys.stderr)
    elif callable(progress):
        report_progress = progress
    else:
        report_progress = None

    writer = CheckpointWriter(checkpoint) if checkpoint is not None else None
    evaluated = feasible = infeasible = 0
    worker_baseline_runs = 0
    if pruned:
        if writer is not None:
            writer.write([rec for _key, rec in pruned])
        for key, rec in pruned:
            done[key] = rec

    def absorb(keys: Iterable[tuple], records: list[RunRecord]) -> None:
        nonlocal evaluated, feasible, infeasible
        if writer is not None:
            writer.write(records)
        for key, rec in zip(keys, records):
            done[key] = rec
            evaluated += 1
            feasible += rec.feasible
            infeasible += not rec.feasible
        if report_progress is not None:
            report_progress(
                SweepProgress(
                    total=len(pending),
                    done=evaluated,
                    feasible=feasible,
                    infeasible=infeasible,
                    skipped=skipped,
                    elapsed=time.monotonic() - t0,
                    deduped=deduped,
                )
            )

    # Group pending jobs by (app, device): the adaptive controller's unit
    # of throughput, and the worker's unit of app-cache locality.
    chunker = AdaptiveChunker(target_seconds=target_chunk_seconds)
    groups: OrderedDict[tuple, deque] = OrderedDict()
    for key, job in pending.items():
        groups.setdefault((job.app, key[1]), deque()).append((key, job))

    def next_chunk() -> tuple[tuple | None, list]:
        """Pop the next chunk, round-robin across groups for fair mixing."""
        if not groups:
            return None, []
        group = next(iter(groups))
        queue = groups[group]
        size = chunk_size or chunker.next_size(group)
        chunk = [queue.popleft() for _ in range(min(size, len(queue)))]
        if queue:
            groups.move_to_end(group)
        else:
            del groups[group]
        return group, chunk

    workers = max(1, int(max_workers or 1))
    try:
        if workers == 1:
            runner = serial_runner or src or factory(*args)
            if shipped and runner is not src and hasattr(runner, "prime_baselines"):
                runner.prime_baselines(shipped)

            def rebuild():
                nonlocal runner
                runner = factory(*args)
                if shipped and hasattr(runner, "prime_baselines"):
                    runner.prime_baselines(shipped)
                return runner

            while True:
                group, chunk = next_chunk()
                if not chunk:
                    break
                t_chunk = time.monotonic()
                records = [
                    run_point_with_retry(
                        runner, job.app, job.device, job.point, site=job.site,
                        retries=retries, rebuild=rebuild,
                    )
                    for _key, job in chunk
                ]
                chunker.observe(group, len(chunk), time.monotonic() - t_chunk)
                absorb([key for key, _job in chunk], records)
        elif pending:
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(pending)),
                initializer=_init_batch_worker,
                initargs=(factory, args, shipped),
            )
            try:
                # Keep exactly `workers` chunks in flight: each completion
                # feeds the controller before the next chunk is sized, so
                # chunk sizes track throughput while the pool stays busy.
                inflight: dict = {}
                while groups or inflight:
                    while len(inflight) < workers and groups:
                        group, chunk = next_chunk()
                        if not chunk:
                            break
                        payload = [
                            (job.app, job.device, job.point, job.site)
                            for _key, job in chunk
                        ]
                        fut = pool.submit(_run_batch_chunk, payload, retries)
                        inflight[fut] = (group, [key for key, _job in chunk])
                    if not inflight:
                        break
                    finished, _ = wait(inflight, return_when=FIRST_COMPLETED)
                    for fut in finished:
                        group, keys = inflight.pop(fut)
                        records, seconds, computes = fut.result()
                        worker_baseline_runs += computes
                        chunker.observe(group, len(keys), seconds)
                        absorb(keys, records)
            finally:
                # Never block on queued chunks: a Ctrl-C mid-campaign must
                # tear down promptly, keeping what the checkpoint absorbed.
                pool.shutdown(wait=False, cancel_futures=True)
    finally:
        if writer is not None:
            writer.close()

    return BatchReport(
        records=[done[key] for key in slot_keys],
        evaluated=evaluated,
        skipped=skipped,
        deduped=deduped,
        pruned=len(pruned),
        baseline_runs=baseline_runs,
        worker_baseline_runs=worker_baseline_runs,
        elapsed=time.monotonic() - t0,
        checkpoint=str(checkpoint) if checkpoint is not None else None,
        extra={"chunk_log": list(chunker.log)},
    )


# ----------------------------------------------------------------------
@dataclass
class EngineStats:
    """Cumulative counters across one :class:`BatchEngine`'s lifetime."""

    #: Job slots requested through the engine.
    submitted: int = 0
    #: Points actually simulated.
    executed: int = 0
    #: Slots served from the engine's session cache (cross-call dedupe).
    cache_hits: int = 0
    #: Duplicate slots collapsed inside single calls.
    deduped: int = 0
    #: Slots served from the checkpoint file.
    skipped: int = 0
    #: Slots recorded by the static preflight without simulating.
    pruned: int = 0
    #: Unique (app, device) baselines computed, session-wide.
    baseline_runs: int = 0
    #: Baselines recomputed inside workers (0 when sharing works).
    worker_baseline_runs: int = 0
    elapsed: float = 0.0


class BatchEngine:
    """Session-scoped front-end to :func:`run_batch`.

    Holds one parent :class:`ExperimentRunner` (the baseline cache and the
    serial executor) and one in-memory record cache keyed by the checkpoint
    label space, so *independent callers* — Fig 6 and Fig 7, a search and a
    figure — share overlapping points instead of simulating them twice.
    ``stats`` exposes the exact dedupe/baseline counters, so "computed
    exactly once" is assertable rather than assumed."""

    def __init__(
        self,
        *,
        problems: dict | None = None,
        seed: int = 2023,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        target_chunk_seconds: float = TARGET_CHUNK_SECONDS,
        checkpoint: str | Path | None = None,
        retries: int = 1,
        progress: bool | Callable[[SweepProgress], None] = False,
        preflight: bool | Callable[..., RunRecord | None] = False,
        runner: ExperimentRunner | None = None,
    ) -> None:
        self.runner = runner or ExperimentRunner(problems=problems, seed=seed)
        self.max_workers = max(1, int(max_workers or 1))
        self.chunk_size = chunk_size
        self.target_chunk_seconds = target_chunk_seconds
        self.checkpoint = checkpoint
        self.retries = retries
        self.progress = progress
        self.preflight = preflight
        self.stats = EngineStats()
        self._cache: dict[tuple, RunRecord] = {}
        self._dev_names: dict[str, str] = {}

    def _key(self, job: BatchJob) -> tuple:
        if isinstance(job.device, DeviceSpec):
            name = job.device.name
        else:
            name = self._dev_names.get(job.device)
            if name is None:
                name = get_device(job.device).name
                self._dev_names[job.device] = name
        return (job.app, name, job.point.label())

    def run_jobs(self, jobs: list[BatchJob]) -> list[RunRecord]:
        """Evaluate ``jobs``, returning one record per job in job order."""
        keys = [self._key(job) for job in jobs]
        self.stats.submitted += len(jobs)
        fresh: OrderedDict[tuple, BatchJob] = OrderedDict()
        hits = 0
        for job, key in zip(jobs, keys):
            if key in self._cache:
                hits += 1
            elif key not in fresh:
                fresh[key] = job
        self.stats.cache_hits += hits
        self.stats.deduped += (len(jobs) - hits) - len(fresh)
        if fresh:
            before = self.runner.baseline_computes
            report = run_batch(
                list(fresh.values()),
                problems=self.runner.problems,
                seed=self.runner.seed,
                max_workers=self.max_workers,
                chunk_size=self.chunk_size,
                target_chunk_seconds=self.target_chunk_seconds,
                checkpoint=self.checkpoint,
                retries=self.retries,
                progress=self.progress,
                preflight=self.preflight,
                baseline_source=self.runner,
                serial_runner=self.runner if self.max_workers == 1 else None,
            )
            for key, rec in zip(fresh, report.records):
                self._cache[key] = rec
            self.stats.executed += report.evaluated
            self.stats.skipped += report.skipped
            self.stats.pruned += report.pruned
            self.stats.baseline_runs += self.runner.baseline_computes - before
            self.stats.worker_baseline_runs += report.worker_baseline_runs
            self.stats.elapsed += report.elapsed
        return [self._cache[key] for key in keys]

    def run_sweep(
        self,
        app: str,
        device: str | DeviceSpec,
        points: list[SweepPoint],
        site: str | None = None,
    ) -> list[RunRecord]:
        """Drop-in for :meth:`ExperimentRunner.run_sweep` through the engine."""
        return self.run_jobs([BatchJob(app, device, pt, site=site) for pt in points])

    def run_point(
        self,
        app: str,
        device: str | DeviceSpec,
        point: SweepPoint,
        site: str | None = None,
    ) -> RunRecord:
        """Drop-in for :meth:`ExperimentRunner.run_point` through the engine."""
        return self.run_jobs([BatchJob(app, device, point, site=site)])[0]
