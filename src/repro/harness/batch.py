"""Heterogeneous batch evaluation: one persistent, streaming parallel engine.

PR 1 parallelized *single* sweeps; PR 3 widened the unit of work to
arbitrary heterogeneous ``device × app × technique × point`` batches with
parent-resolved baselines and adaptive chunk sizing.  Two costs remained,
both named in ROADMAP: every ``run_jobs`` call still paid a fresh
``ProcessPoolExecutor`` spawn, and consumers blocked on the whole batch
instead of seeing records as chunks landed.  This revision removes both:

* :class:`WorkerPool` keeps one ``ProcessPoolExecutor`` alive for a whole
  :class:`BatchEngine` session — spawned lazily on first use, reaped after
  a configurable idle TTL, respawned automatically (with the
  poisoned-runner rebuild) when a worker process crashes — so a session of
  generation-sized batches pays the spawn cost once (``stats.pool_spawns``
  makes "exactly one pool" assertable).
* :class:`BatchStream` / :meth:`BatchEngine.submit` stream records to the
  caller as chunks complete, while checkpoint writes, progress callbacks,
  and the engine cache absorb them in the background.  The blocking
  :func:`run_batch` / :meth:`BatchEngine.run_jobs` paths are now thin
  drains of the same stream, so the streamed and blocking record sets are
  identical by construction.
* :class:`StreamSession` is the incremental variant — ``put()`` one job at
  a time, consume results in submission order while later jobs evaluate —
  feeding the steady-state evolutionary search, and the seam where the
  ROADMAP's distributed work-stealing queue will plug in.

Execution policy (workers, chunking, checkpoint, retries, progress,
preflight, sanitize, baseline sharing, idle TTL) lives in one frozen
:class:`~repro.harness.config.SweepConfig`; the PR-3 loose keywords remain
accepted through a :class:`DeprecationWarning` shim.

The serial path (``workers <= 1``) runs the same code in-process and
produces byte-identical records (the simulation is deterministic per
seed), so every caller keeps a ``parallel=0`` escape hatch that matches
the old behaviour exactly.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.gpusim.device import DeviceSpec, get_device
from repro.harness.config import (
    TARGET_CHUNK_SECONDS,
    UNSET,
    SweepConfig,
    resolve_config,
)
from repro.harness.database import CheckpointWriter, ResultsDB
from repro.harness.reporting import SweepProgress, format_progress
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.harness.sweep import SweepPoint

#: Chunk size used for a group before any throughput has been observed —
#: deliberately small so the controller gets feedback after little work.
INITIAL_CHUNK_SIZE = 2
MIN_CHUNK_SIZE = 1
MAX_CHUNK_SIZE = 64
#: Pool respawns one batch/session tolerates before recording the affected
#: jobs as infeasible (a chunk that reliably kills workers must not respawn
#: forever).
MAX_POOL_RESPAWNS = 3


def _default_factory(problems: dict | None, seed: int) -> ExperimentRunner:
    return ExperimentRunner(problems=problems, seed=seed)


@dataclass(frozen=True)
class BatchJob:
    """One unit of work: evaluate ``point`` for ``app`` on ``device``."""

    app: str
    device: str | DeviceSpec
    point: SweepPoint
    site: str | None = None


@dataclass
class BatchReport:
    """Outcome of one :func:`run_batch` invocation."""

    #: One record per input job, in job order (checkpointed + fresh; a
    #: deduplicated slot shares its record with the slot it collapsed into).
    records: list[RunRecord]
    #: Points actually simulated by this invocation.
    evaluated: int
    #: Job slots satisfied from the checkpoint without running.
    skipped: int
    #: Duplicate job slots collapsed within this batch.
    deduped: int = 0
    #: Points recorded as infeasible by the static preflight, unsimulated.
    pruned: int = 0
    #: Job slots served from the content-hash variant cache.
    variant_hits: int = 0
    #: Unique (app, device) baselines computed in the parent for sharing.
    baseline_runs: int = 0
    #: Baselines computed inside pool workers (0 when sharing is on).
    worker_baseline_runs: int = 0
    elapsed: float = 0.0
    checkpoint: str | None = None
    extra: dict = field(default_factory=dict)

    @property
    def feasible(self) -> int:
        return sum(1 for r in self.records if r.feasible)

    @property
    def infeasible(self) -> int:
        return len(self.records) - self.feasible


class AdaptiveChunker:
    """Feedback controller sizing chunks from observed points/sec.

    Each (app, device) group keeps an exponentially-smoothed throughput
    estimate; the next chunk for a group carries
    ``rate × target_seconds`` points, clamped to
    [``min_size``, ``max_size``].  Until a group has been observed it gets
    ``initial`` points, so the first measurement arrives quickly even for
    slow apps."""

    def __init__(
        self,
        target_seconds: float = TARGET_CHUNK_SECONDS,
        initial: int = INITIAL_CHUNK_SIZE,
        min_size: int = MIN_CHUNK_SIZE,
        max_size: int = MAX_CHUNK_SIZE,
        smoothing: float = 0.5,
    ) -> None:
        self.target_seconds = target_seconds
        self.initial = initial
        self.min_size = min_size
        self.max_size = max_size
        self.smoothing = smoothing
        self.rates: dict = {}
        #: (group, points, seconds) per observed chunk, for introspection.
        self.log: list[tuple] = []

    def next_size(self, group=None) -> int:
        rate = self.rates.get(group)
        if rate is None:
            return self.initial
        want = int(round(rate * self.target_seconds)) or 1
        return max(self.min_size, min(self.max_size, want))

    def observe(self, group, points: int, seconds: float) -> None:
        if points <= 0:
            return
        rate = points / max(seconds, 1e-9)
        prev = self.rates.get(group)
        self.rates[group] = (
            rate if prev is None
            else self.smoothing * rate + (1.0 - self.smoothing) * prev
        )
        self.log.append((group, points, seconds))


# ----------------------------------------------------------------------
# Retry wrapper.  Shared by the serial and worker paths.
def run_point_with_retry(
    runner,
    app: str,
    device: str | DeviceSpec,
    point: SweepPoint,
    site: str | None = None,
    retries: int = 1,
    rebuild: Callable[[], object] | None = None,
    sanitize: bool = False,
) -> RunRecord:
    """``runner.run_point`` hardened for sweep duty.

    ``run_point`` already records infeasible configurations gracefully;
    this catches everything else (harness bugs, partial region stats, a
    poisoned worker), retries ``retries`` times, and on persistent failure
    returns an infeasible record carrying the exception so one bad point
    cannot abort a 57k-point campaign.

    ``rebuild`` is called before each retry to replace the runner: an
    unexpected exception can leave the per-process runner's baseline/app
    caches or region state half-mutated, and retrying on the poisoned
    instance can fail for the wrong reason.  The callable should also
    update whatever slot the caller reuses across points (the worker
    global, a closure variable) so later points get the fresh instance."""
    # ``sanitize`` is forwarded only when set, so stub runners whose
    # run_point lacks the keyword keep working.
    kwargs = {"sanitize": True} if sanitize else {}
    last: Exception | None = None
    for attempt in range(max(0, retries) + 1):
        if attempt and rebuild is not None:
            try:
                runner = rebuild()
            except Exception:  # noqa: BLE001 — keep the old instance over losing the point
                pass
        try:
            return runner.run_point(app, device, point, site=site, **kwargs)
        except Exception as exc:  # noqa: BLE001 — sweep must survive anything
            last = exc
    return RunRecord(
        app=app,
        device=get_device(device).name,
        technique=point.technique,
        params=dict(point.params),
        level=point.level,
        items_per_thread=point.items_per_thread,
        feasible=False,
        note=(
            f"WorkerError after {retries + 1} attempts: "
            f"{type(last).__name__}: {last}"
        ),
    )


def _crash_record(job: BatchJob, why: str) -> RunRecord:
    """Infeasible record for a job lost to repeated pool crashes."""
    return RunRecord(
        app=job.app,
        device=get_device(job.device).name,
        technique=job.point.technique,
        params=dict(job.point.params),
        level=job.point.level,
        items_per_thread=job.point.items_per_thread,
        feasible=False,
        note=f"WorkerCrash: {why}",
    )


# ----------------------------------------------------------------------
# Worker side.  Each pool process builds one runner in its initializer and
# reuses it for every chunk; baselines arrive *with the chunks* (a
# persistent pool outlives any single batch's baseline set) and accumulate
# in ``_BATCH_BASELINES`` so a retry rebuild re-primes everything seen.
_BATCH_FACTORY: Callable | None = None
_BATCH_ARGS: tuple = ()
_BATCH_BASELINES: dict = {}
_BATCH_RUNNER = None
_BATCH_RETIRED_COMPUTES = 0


def _build_worker_runner():
    runner = _BATCH_FACTORY(*_BATCH_ARGS)
    if _BATCH_BASELINES and hasattr(runner, "prime_baselines"):
        runner.prime_baselines(_BATCH_BASELINES)
    return runner


def _rebuild_batch_runner():
    """Replace a possibly-poisoned worker runner with a fresh, primed one."""
    global _BATCH_RUNNER, _BATCH_RETIRED_COMPUTES
    _BATCH_RETIRED_COMPUTES += getattr(_BATCH_RUNNER, "baseline_computes", 0)
    _BATCH_RUNNER = _build_worker_runner()
    return _BATCH_RUNNER


def _init_batch_worker(factory: Callable, args: tuple) -> None:
    global _BATCH_FACTORY, _BATCH_ARGS, _BATCH_BASELINES
    _BATCH_FACTORY, _BATCH_ARGS, _BATCH_BASELINES = factory, args, {}
    _rebuild_batch_runner()


def _worker_baseline_computes() -> int:
    return _BATCH_RETIRED_COMPUTES + getattr(_BATCH_RUNNER, "baseline_computes", 0)


def _run_batch_chunk(
    chunk: list[tuple],
    retries: int,
    baselines: dict | None = None,
    sanitize: bool = False,
) -> tuple[list, float, int]:
    """Run one heterogeneous chunk; returns (records, seconds, baseline runs).

    ``seconds`` is measured in the worker so the adaptive controller sees
    compute time, not queue wait."""
    assert _BATCH_RUNNER is not None, "pool initializer did not run"
    if baselines:
        _BATCH_BASELINES.update(baselines)
        if hasattr(_BATCH_RUNNER, "prime_baselines"):
            _BATCH_RUNNER.prime_baselines(baselines)
    before = _worker_baseline_computes()
    t0 = time.monotonic()
    records = [
        run_point_with_retry(
            _BATCH_RUNNER, app, device, point, site=site,
            retries=retries, rebuild=_rebuild_batch_runner, sanitize=sanitize,
        )
        for app, device, point, site in chunk
    ]
    return records, time.monotonic() - t0, _worker_baseline_computes() - before


# ----------------------------------------------------------------------
class WorkerPool:
    """A kept-alive ``ProcessPoolExecutor`` for batch workers.

    Spawned lazily on the first submission, kept warm between batches so a
    session of ``run_jobs`` calls pays the interpreter-spawn cost once,
    reaped after ``idle_ttl`` seconds without work (a daemon timer; the
    next submission transparently respawns), and replaced wholesale by
    :meth:`respawn` when a crashed worker breaks the executor.  ``spawns``
    / ``respawns`` count pool creations so "exactly one pool per session"
    is assertable rather than assumed.
    """

    def __init__(
        self,
        max_workers: int,
        factory: Callable = _default_factory,
        args: tuple = (None, 2023),
        idle_ttl: float | None = None,
    ) -> None:
        self.max_workers = max(1, int(max_workers))
        self.factory = factory
        self.args = args
        self.idle_ttl = idle_ttl
        self.spawns = 0
        self.respawns = 0
        self._executor: ProcessPoolExecutor | None = None
        self._lock = threading.RLock()
        self._timer: threading.Timer | None = None
        self._active = 0
        self._last_used = time.monotonic()

    @property
    def alive(self) -> bool:
        return self._executor is not None

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _ensure(self) -> ProcessPoolExecutor:
        self._cancel_timer()
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_init_batch_worker,
                initargs=(self.factory, self.args),
            )
            self.spawns += 1
        self._last_used = time.monotonic()
        return self._executor

    def submit(self, fn, *args):
        with self._lock:
            return self._ensure().submit(fn, *args)

    def acquire(self) -> None:
        """Mark the pool in-use: suspends idle reaping until released."""
        with self._lock:
            self._active += 1
            self._cancel_timer()

    def release(self) -> None:
        """Mark one user done; schedules the idle reap when none remain."""
        with self._lock:
            self._active = max(0, self._active - 1)
            self._last_used = time.monotonic()
            if self._active == 0 and self.idle_ttl is not None and self.alive:
                self._cancel_timer()
                self._timer = threading.Timer(self.idle_ttl, self.reap_idle)
                self._timer.daemon = True
                self._timer.start()

    def reap_idle(self, force: bool = False) -> bool:
        """Shut the executor down if it has sat idle past the TTL.

        Returns True if the pool was reaped.  ``force=True`` reaps an idle
        pool regardless of elapsed time (deterministic tests)."""
        with self._lock:
            if self._executor is None or self._active:
                return False
            idle = time.monotonic() - self._last_used
            # The timer can fire a scheduler tick early; allow 1% slack.
            if not force and (
                self.idle_ttl is None or idle < self.idle_ttl * 0.99
            ):
                return False
            self._cancel_timer()
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            return True

    def respawn(self) -> ProcessPoolExecutor:
        """Replace a broken executor with a fresh one (counted)."""
        with self._lock:
            old, self._executor = self._executor, None
            if old is not None:
                old.shutdown(wait=False, cancel_futures=True)
            self.respawns += 1
            return self._ensure()

    def shutdown(self) -> None:
        with self._lock:
            self._cancel_timer()
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
def _job_keys(jobs: list[BatchJob], dev_names: dict[str, str]) -> list[tuple]:
    """Checkpoint-label-space identity per job (device presets memoized)."""
    keys = []
    for job in jobs:
        if isinstance(job.device, DeviceSpec):
            name = job.device.name
        else:
            name = dev_names.get(job.device)
            if name is None:
                name = get_device(job.device).name
                dev_names[job.device] = name
        keys.append((job.app, name, job.point.label()))
    return keys


def _order_pending(
    pending: "OrderedDict[tuple, BatchJob]",
    order,
    done: dict,
    bound: float | None = None,
) -> "OrderedDict[tuple, BatchJob]":
    """Reorder the pending frontier per ``SweepConfig.order``.

    A callable receives the pending job list and must return a permutation
    of it (checked by identity in the checkpoint label space); ``True``
    scores each job with the incremental surrogate fitted from already-done
    records (checkpoint rows of this very campaign), descending, stable."""
    entries = list(pending.items())
    if callable(order):
        ordered_jobs = list(order([job for _key, job in entries]))
        new_keys = _job_keys(ordered_jobs, {})
        if sorted(new_keys) != sorted(pending):
            raise ValueError(
                "order callable must return a permutation of the pending jobs"
            )
        return OrderedDict((key, pending[key]) for key in new_keys)
    from repro.harness.pruning import DEFAULT_QOI_BOUND, Surrogate

    surrogate = Surrogate()
    surrogate.observe_records(done.values())
    b = bound if bound is not None else DEFAULT_QOI_BOUND
    scores = {key: surrogate.score(job.point, b) for key, job in entries}
    return OrderedDict(sorted(entries, key=lambda kv: -scores[kv[0]]))


class BatchStream:
    """Iterator over a batch's records, yielded as they become available.

    Construction resolves job identities, loads the checkpoint, collapses
    duplicates, runs the static preflight, and resolves shared baselines;
    iteration drives the dispatch loop.  Slots satisfied without
    simulation (checkpoint, preflight prune, duplicate of an earlier slot)
    yield first, in job order; fresh evaluations yield as their chunks
    complete — while checkpoint writes and progress callbacks absorb them
    in the background — so a consumer overlaps its own work with the
    pool's.  :meth:`records` / :meth:`report` drain the stream and return
    the job-ordered result, byte-identical to the blocking path.

    With ``pool=None`` and ``config.workers > 1`` the stream owns a
    transient :class:`WorkerPool` (shut down when the stream finishes);
    passing a shared pool — what :class:`BatchEngine` does — reuses its
    warm workers and leaves its lifecycle to the owner.
    """

    def __init__(
        self,
        jobs: Iterable[BatchJob],
        *,
        problems: dict | None = None,
        seed: int = 2023,
        config: SweepConfig | None = None,
        pool: WorkerPool | None = None,
        baseline_source: ExperimentRunner | None = None,
        serial_runner: ExperimentRunner | None = None,
        runner_factory: Callable[..., ExperimentRunner] | None = None,
        factory_args: tuple | None = None,
        on_result: Callable[[tuple, RunRecord], None] | None = None,
        on_done: Callable[["BatchStream"], None] | None = None,
        variant_cache=None,
    ) -> None:
        cfg = config if config is not None else SweepConfig()
        self.config = cfg
        self.jobs = list(jobs)
        self._on_result = on_result
        self._on_done = on_done
        self._t0 = time.monotonic()
        self._factory = runner_factory or _default_factory
        self._args = factory_args if factory_args is not None else (problems, seed)
        default_runner = runner_factory is None

        self._slot_keys = _job_keys(self.jobs, {})
        self._slots_by_key: dict[tuple, list[int]] = {}
        for idx, key in enumerate(self._slot_keys):
            self._slots_by_key.setdefault(key, []).append(idx)

        # Checkpointed jobs are trusted and never dispatched.
        self._done: dict[tuple, RunRecord] = {}
        if cfg.checkpoint is not None and Path(cfg.checkpoint).exists():
            index: dict[tuple, RunRecord] = {}
            for rec in ResultsDB.load(cfg.checkpoint):
                index[(rec.app, rec.device, SweepPoint.of_record(rec).label())] = rec
            for key in self._slots_by_key:
                if key in index:
                    self._done[key] = index[key]
        self.skipped = sum(
            1 for key in self._slot_keys if key in self._done
        )

        # In-batch dedupe: first job per identity wins, later slots share it.
        pending: OrderedDict[tuple, BatchJob] = OrderedDict()
        for job, key in zip(self.jobs, self._slot_keys):
            if key not in self._done and key not in pending:
                pending[key] = job
        self.deduped = (len(self.jobs) - self.skipped) - len(pending)

        # Static preflight: vet pending jobs in the parent (cheap — no
        # simulation) and divert the statically infeasible ones straight to
        # the results, so the pool only ever sees points that might run.
        pre = cfg.preflight
        pruned: list[tuple[tuple, RunRecord]] = []
        if pre:
            if pre is True:
                from repro.analysis.preflight import make_preflight

                pre = make_preflight(problems)
            survivors: OrderedDict[tuple, BatchJob] = OrderedDict()
            for key, job in pending.items():
                rec = pre(job.app, job.device, job.point, site=job.site)
                if rec is None:
                    survivors[key] = job
                else:
                    pruned.append((key, rec))
            pending = survivors
        self.pruned = len(pruned)

        # Content-hash variant cache: identical lowered configurations from
        # *other* campaigns (different checkpoint files, figures, apps) are
        # served without simulating.  Only sound for the stock runner — a
        # custom runner_factory may not be content-deterministic.
        self.variant_hits = 0
        self._vcache = None
        self._vkeys: dict[tuple, str] = {}
        vhits: list[tuple[tuple, RunRecord]] = []
        if default_runner:
            if variant_cache is not None:
                self._vcache = variant_cache
            elif cfg.variant_cache is not None:
                from repro.harness.pruning import resolve_variant_cache

                self._vcache = resolve_variant_cache(cfg.variant_cache)
        if self._vcache is not None:
            fresh_pending: OrderedDict[tuple, BatchJob] = OrderedDict()
            for key, job in pending.items():
                vkey = self._vcache.key_for(
                    job.app, job.device, job.point, site=job.site,
                    seed=self._args[1], problem=self._args[0],
                    sanitize=cfg.sanitize,
                )
                rec = self._vcache.get(vkey)
                if rec is None:
                    self._vkeys[key] = vkey
                    fresh_pending[key] = job
                else:
                    vhits.append((key, rec))
            pending = fresh_pending
            self.variant_hits = len(vhits)

        # Surrogate (or caller-supplied) ordering of the pending frontier:
        # changes dispatch order only — records stay slot-ordered, so the
        # result set is byte-identical either way.
        if cfg.order and len(pending) > 1:
            pending = _order_pending(
                pending,
                cfg.order,
                self._done,
                bound=(
                    float(cfg.prune)
                    if isinstance(cfg.prune, float)
                    else None
                ),
            )

        # Baseline pre-resolution: every unique (app, device) among the
        # pending jobs, computed exactly once, shipped to workers alongside
        # their chunks (a persistent pool outlives any one batch, so the
        # old ship-once-via-initializer channel no longer exists).
        self.baseline_runs = 0
        self._group_baselines: dict[tuple, dict] = {}
        src: ExperimentRunner | None = None
        pairs: OrderedDict[tuple, BatchJob] = OrderedDict()
        for key, job in pending.items():
            pairs.setdefault((job.app, key[1]), job)
        if cfg.share_baselines and default_runner and pending:
            src = baseline_source or serial_runner or ExperimentRunner(
                problems=problems, seed=seed
            )
            before = src.baseline_computes
            for (_app, _dev), job in pairs.items():
                src.baseline(job.app, job.device)
            self.baseline_runs = src.baseline_computes - before
            for cache_key, result in src.export_baselines().items():
                pair = (cache_key[0], cache_key[1])
                if pair in pairs:
                    self._group_baselines.setdefault(pair, {})[cache_key] = result

        if cfg.progress is True:
            def report_progress(p: SweepProgress) -> None:
                print(format_progress(p), file=sys.stderr)

            self._report_progress = report_progress
        elif callable(cfg.progress):
            self._report_progress = cfg.progress
        else:
            self._report_progress = None

        self._writer = (
            CheckpointWriter(cfg.checkpoint) if cfg.checkpoint is not None else None
        )
        self.evaluated = self._feasible = self._infeasible = 0
        self.worker_baseline_runs = 0
        self.pool_respawns = 0
        self.elapsed = 0.0

        # Early-resolved slots yield first, in job order.
        self._ready: deque[int] = deque()
        for key in list(self._done):
            self._notify(key, self._done[key])
        if pruned:
            if self._writer is not None:
                self._writer.write([rec for _key, rec in pruned])
            for key, rec in pruned:
                self._done[key] = rec
                self._notify(key, rec)
        if vhits:
            # Variant-cache hits come from other campaigns' caches, so they
            # are written into *this* checkpoint to keep it self-contained.
            if self._writer is not None:
                self._writer.write([rec for _key, rec in vhits])
            for key, rec in vhits:
                self._done[key] = rec
                self._notify(key, rec)

        # Group pending jobs by (app, device): the adaptive controller's
        # unit of throughput, and the worker's unit of app-cache locality.
        self._chunker = AdaptiveChunker(target_seconds=cfg.target_chunk_seconds)
        self._groups: OrderedDict[tuple, deque] = OrderedDict()
        for key, job in pending.items():
            self._groups.setdefault((job.app, key[1]), deque()).append((key, job))
        self._total_pending = len(pending)

        self._workers = max(1, int(cfg.workers))
        self._inflight: dict = {}
        self._respawns_left = MAX_POOL_RESPAWNS
        self._pool: WorkerPool | None = None
        self._owns_pool = False
        self._runner: ExperimentRunner | None = None
        if self._workers > 1 and pending:
            if pool is not None:
                self._pool = pool
                self._pool.acquire()
            else:
                self._pool = WorkerPool(self._workers, self._factory, self._args)
                self._owns_pool = True
        else:
            runner = serial_runner or src or self._factory(*self._args)
            if (
                self._group_baselines
                and runner is not src
                and hasattr(runner, "prime_baselines")
            ):
                for entry in self._group_baselines.values():
                    runner.prime_baselines(entry)
            self._runner = runner
        self._yielded = 0
        self._finished = False

    # -- bookkeeping ----------------------------------------------------
    def _notify(self, key: tuple, record: RunRecord) -> None:
        self._ready.extend(self._slots_by_key.get(key, ()))
        if self._on_result is not None:
            self._on_result(key, record)

    def _absorb(self, keys: list[tuple], records: list[RunRecord]) -> None:
        if self._writer is not None:
            self._writer.write(records)
        for key, rec in zip(keys, records):
            self._done[key] = rec
            self.evaluated += 1
            self._feasible += rec.feasible
            self._infeasible += not rec.feasible
            if (
                self._vcache is not None
                and key in self._vkeys
                and not (rec.note or "").startswith(("WorkerError", "WorkerCrash"))
            ):
                # Crash/retry-exhaustion records reflect machine state, not
                # the configuration's content — never cache them.
                self._vcache.put(self._vkeys[key], rec)
            self._notify(key, rec)
        if self._report_progress is not None:
            self._report_progress(
                SweepProgress(
                    total=self._total_pending,
                    done=self.evaluated,
                    feasible=self._feasible,
                    infeasible=self._infeasible,
                    skipped=self.skipped,
                    elapsed=time.monotonic() - self._t0,
                    deduped=self.deduped,
                )
            )

    def _next_chunk(self) -> tuple[tuple | None, list]:
        """Pop the next chunk, round-robin across groups for fair mixing."""
        if not self._groups:
            return None, []
        group = next(iter(self._groups))
        queue = self._groups[group]
        size = self.config.chunk_size or self._chunker.next_size(group)
        chunk = [queue.popleft() for _ in range(min(size, len(queue)))]
        if queue:
            self._groups.move_to_end(group)
        else:
            del self._groups[group]
        return group, chunk

    # -- dispatch -------------------------------------------------------
    def _dispatch(self, group: tuple, keys: list[tuple], jobs: list[BatchJob]) -> None:
        payload = [(job.app, job.device, job.point, job.site) for job in jobs]
        try:
            fut = self._pool.submit(
                _run_batch_chunk, payload, self.config.retries,
                self._group_baselines.get(group), self.config.sanitize,
            )
        except Exception:  # noqa: BLE001 — broken pool surfaces at submit too
            self._recover([(group, keys, jobs)])
            return
        self._inflight[fut] = (group, keys, jobs)

    def _recover(self, casualties: list[tuple]) -> None:
        """Respawn a broken pool and re-run its lost chunks (budgeted)."""
        casualties = casualties + list(self._inflight.values())
        self._inflight.clear()
        if self._respawns_left > 0:
            self._respawns_left -= 1
            self.pool_respawns += 1
            self._pool.respawn()
            for group, keys, jobs in casualties:
                self._dispatch(group, keys, jobs)
        else:
            why = (
                f"process pool broke {MAX_POOL_RESPAWNS + 1} times; "
                f"chunk abandoned"
            )
            for _group, keys, jobs in casualties:
                self._absorb(keys, [_crash_record(j, why) for j in jobs])

    def _pump(self) -> bool:
        """Advance the batch one step; False when no work remains."""
        if self._finished:
            return False
        if self._pool is None:
            group, chunk = self._next_chunk()
            if not chunk:
                return False

            def rebuild():
                self._runner = self._factory(*self._args)
                if hasattr(self._runner, "prime_baselines"):
                    for entry in self._group_baselines.values():
                        self._runner.prime_baselines(entry)
                return self._runner

            t_chunk = time.monotonic()
            records = [
                run_point_with_retry(
                    self._runner, job.app, job.device, job.point, site=job.site,
                    retries=self.config.retries, rebuild=rebuild,
                    sanitize=self.config.sanitize,
                )
                for _key, job in chunk
            ]
            self._chunker.observe(group, len(chunk), time.monotonic() - t_chunk)
            self._absorb([key for key, _job in chunk], records)
            return True
        while len(self._inflight) < self._workers and self._groups:
            group, chunk = self._next_chunk()
            if not chunk:
                break
            self._dispatch(
                group, [key for key, _job in chunk], [job for _key, job in chunk]
            )
        if not self._inflight:
            return False
        finished, _ = wait(self._inflight, return_when=FIRST_COMPLETED)
        casualties = []
        for fut in finished:
            group, keys, jobs = self._inflight.pop(fut)
            try:
                records, seconds, computes = fut.result()
            except Exception:  # noqa: BLE001 — a dead worker breaks the pool
                casualties.append((group, keys, jobs))
                continue
            self.worker_baseline_runs += computes
            self._chunker.observe(group, len(keys), seconds)
            self._absorb(keys, records)
        if casualties:
            self._recover(casualties)
        return True

    # -- iteration ------------------------------------------------------
    def __iter__(self) -> Iterator[RunRecord]:
        return self

    def __next__(self) -> RunRecord:
        try:
            while not self._ready:
                if not self._pump():
                    break
        except BaseException:
            self._finish()
            raise
        if not self._ready:
            self._finish()
            raise StopIteration
        idx = self._ready.popleft()
        self._yielded += 1
        if self._yielded == len(self.jobs):
            self._finish()
        return self._done[self._slot_keys[idx]]

    @property
    def pending(self) -> int:
        """Job slots not yet yielded."""
        return len(self.jobs) - self._yielded

    def records(self) -> list[RunRecord]:
        """Drain the stream; all records in job order (blocking-equivalent)."""
        for _ in self:
            pass
        return [self._done[key] for key in self._slot_keys]

    def report(self) -> BatchReport:
        """Drain the stream into a blocking-path :class:`BatchReport`."""
        records = self.records()
        return BatchReport(
            records=records,
            evaluated=self.evaluated,
            skipped=self.skipped,
            deduped=self.deduped,
            pruned=self.pruned,
            variant_hits=self.variant_hits,
            baseline_runs=self.baseline_runs,
            worker_baseline_runs=self.worker_baseline_runs,
            elapsed=self.elapsed,
            checkpoint=(
                str(self.config.checkpoint)
                if self.config.checkpoint is not None else None
            ),
            extra={
                "chunk_log": list(self._chunker.log),
                "pool_respawns": self.pool_respawns,
                "variant_hits": self.variant_hits,
            },
        )

    def close(self) -> None:
        """Stop dispatching; absorb in-flight chunks, drop the rest.

        Everything already completed stays in the checkpoint and the
        engine cache, so a partially-consumed stream never loses finished
        work; slots never evaluated are simply never yielded."""
        if self._finished:
            return
        self._groups.clear()
        while self._inflight:
            if not self._pump():
                break
        self._finish()

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        self.elapsed = time.monotonic() - self._t0
        if self._writer is not None:
            self._writer.close()
        if self._pool is not None:
            if self._owns_pool:
                self._pool.shutdown()
            else:
                self._pool.release()
        if self._on_done is not None:
            self._on_done(self)

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            if not self._finished:
                self._groups.clear()
                self._inflight.clear()
                self._finish()
        except Exception:
            pass


# ----------------------------------------------------------------------
def run_batch(
    jobs: list[BatchJob],
    *,
    problems: dict | None = None,
    seed: int = 2023,
    config: SweepConfig | None = None,
    pool: WorkerPool | None = None,
    baseline_source: ExperimentRunner | None = None,
    serial_runner: ExperimentRunner | None = None,
    runner_factory: Callable[..., ExperimentRunner] | None = None,
    factory_args: tuple | None = None,
    **legacy,
) -> BatchReport:
    """Execute heterogeneous ``jobs``, in parallel, resumably, deduplicated.

    Identity of a job is ``(app, device name, point label)`` — the same
    label space the PR-1 checkpoints use — so duplicate jobs within the
    batch evaluate once, and ``config.checkpoint`` (a JSONL or
    ``.jsonl.gz`` file, shared across any mix of apps and devices)
    satisfies previously-run jobs without simulating.  ``site`` overrides
    are honoured per job but are *not* part of the identity (records do
    not store them); do not mix site variants of the same point in one
    label space.

    Execution policy lives in ``config`` (:class:`SweepConfig`); the PR-3
    loose keywords (``max_workers``, ``chunk_size``, ...) remain accepted
    through a :class:`DeprecationWarning` shim.  This is the blocking
    drain of :class:`BatchStream` — construct the stream directly (or use
    :meth:`BatchEngine.submit`) to consume records as chunks complete.

    ``pool`` reuses a caller-owned :class:`WorkerPool` (its worker
    processes stay warm afterwards); without one, ``config.workers > 1``
    spins up a transient pool for this call only.
    """
    cfg = resolve_config(config, "run_batch", **legacy)
    return BatchStream(
        jobs,
        problems=problems,
        seed=seed,
        config=cfg,
        pool=pool,
        baseline_source=baseline_source,
        serial_runner=serial_runner,
        runner_factory=runner_factory,
        factory_args=factory_args,
    ).report()


# ----------------------------------------------------------------------
@dataclass
class EngineStats:
    """Cumulative counters across one :class:`BatchEngine`'s lifetime."""

    #: Job slots requested through the engine.
    submitted: int = 0
    #: Points actually simulated.
    executed: int = 0
    #: Slots served from the engine's session cache (cross-call dedupe).
    cache_hits: int = 0
    #: Duplicate slots collapsed inside single calls.
    deduped: int = 0
    #: Slots served from the checkpoint file.
    skipped: int = 0
    #: Slots recorded by the static preflight without simulating.
    pruned: int = 0
    #: Slots served from the content-hash variant cache (cross-campaign
    #: dedupe; see :class:`repro.harness.pruning.VariantCache`).
    variant_hits: int = 0
    #: Unique (app, device) baselines computed, session-wide.
    baseline_runs: int = 0
    #: Baselines recomputed inside workers (0 when sharing works).
    worker_baseline_runs: int = 0
    #: Process pools spawned for this engine (1 for a whole session once
    #: warm; idle reaps and crash respawns add to it).
    pool_spawns: int = 0
    #: Pools respawned after a worker crash broke the executor.
    pool_respawns: int = 0
    elapsed: float = 0.0


class BatchEngine:
    """Session-scoped, persistent front-end to the batch layer.

    Holds one parent :class:`ExperimentRunner` (the baseline cache and the
    serial executor), one in-memory record cache keyed by the checkpoint
    label space — so *independent callers* (Fig 6 and Fig 7, a search and
    a figure) share overlapping points instead of simulating them twice —
    and, for ``config.workers > 1``, one kept-alive :class:`WorkerPool`
    reused by every :meth:`run_jobs` / :meth:`submit` / session call, so
    consecutive batches amortize the pool spawn (``stats.pool_spawns``
    asserts it).  ``close()`` (or the context manager) releases the pool;
    ``config.idle_ttl`` reaps it automatically between bursts.
    """

    def __init__(
        self,
        *,
        problems: dict | None = None,
        seed: int = 2023,
        config: SweepConfig | None = None,
        runner: ExperimentRunner | None = None,
        **legacy,
    ) -> None:
        self.config = resolve_config(config, "BatchEngine", **legacy)
        self.runner = runner or ExperimentRunner(problems=problems, seed=seed)
        self.stats = EngineStats()
        self.variant_cache = None
        if self.config.variant_cache is not None:
            from repro.harness.pruning import resolve_variant_cache

            self.variant_cache = resolve_variant_cache(self.config.variant_cache)
        self._cache: dict[tuple, RunRecord] = {}
        self._dev_names: dict[str, str] = {}
        self.pool: WorkerPool | None = (
            WorkerPool(
                self.config.workers,
                _default_factory,
                (self.runner.problems, self.runner.seed),
                idle_ttl=self.config.idle_ttl,
            )
            if self.config.workers > 1
            else None
        )
        self._closed = False

    #: Back-compat: PR-3 callers read ``engine.max_workers``.
    @property
    def max_workers(self) -> int:
        return self.config.workers

    def _key(self, job: BatchJob) -> tuple:
        if isinstance(job.device, DeviceSpec):
            name = job.device.name
        else:
            name = self._dev_names.get(job.device)
            if name is None:
                name = get_device(job.device).name
                self._dev_names[job.device] = name
        return (job.app, name, job.point.label())

    def _baseline_entries(self, app: str, device: str | DeviceSpec) -> dict:
        """Resolve (and count) the pair's baseline in the parent runner."""
        before = self.runner.baseline_computes
        self.runner.baseline(app, device)
        self.stats.baseline_runs += self.runner.baseline_computes - before
        name = get_device(device).name
        return {
            k: v for k, v in self.runner.export_baselines().items()
            if k[0] == app and k[1] == name
        }

    def _sync_pool_stats(self) -> None:
        if self.pool is not None:
            self.stats.pool_spawns = self.pool.spawns
            self.stats.pool_respawns = self.pool.respawns

    def _on_result(self, key: tuple, record: RunRecord) -> None:
        self._cache[key] = record

    def _on_stream_done(self, stream: BatchStream) -> None:
        self.stats.executed += stream.evaluated
        self.stats.skipped += stream.skipped
        self.stats.pruned += stream.pruned
        self.stats.variant_hits += stream.variant_hits
        self.stats.worker_baseline_runs += stream.worker_baseline_runs
        self.stats.elapsed += stream.elapsed
        self._sync_pool_stats()

    def submit(
        self, jobs: list[BatchJob], *, config: SweepConfig | None = None
    ) -> "EngineStream":
        """Start evaluating ``jobs``; returns a stream of their records.

        The stream yields each job slot's :class:`RunRecord` as it becomes
        available — cache hits immediately, fresh evaluations as their
        chunks complete — so the caller overlaps consumption with the
        pool's execution.  ``records()`` on the stream (what
        :meth:`run_jobs` calls) drains it into the job-ordered list,
        identical to the blocking path.  ``config`` overlays per-call
        policy (e.g. a checkpoint) onto the engine's."""
        cfg = self.config.merged(config)
        keys = [self._key(job) for job in jobs]
        self.stats.submitted += len(jobs)
        fresh: OrderedDict[tuple, BatchJob] = OrderedDict()
        hits = 0
        for job, key in zip(jobs, keys):
            if key in self._cache:
                hits += 1
            elif key not in fresh:
                fresh[key] = job
        deduped = (len(jobs) - hits) - len(fresh)
        self.stats.cache_hits += hits
        self.stats.deduped += deduped
        inner: BatchStream | None = None
        if fresh:
            inner = BatchStream(
                list(fresh.values()),
                problems=self.runner.problems,
                seed=self.runner.seed,
                config=cfg,
                pool=self.pool,
                baseline_source=self.runner,
                serial_runner=self.runner if cfg.workers <= 1 else None,
                on_result=self._on_result,
                on_done=self._on_stream_done,
                variant_cache=self.variant_cache,
            )
            self.stats.baseline_runs += inner.baseline_runs
        return EngineStream(
            self, jobs, keys, inner, cache_hits=hits, deduped=deduped
        )

    def run_jobs(self, jobs: list[BatchJob]) -> list[RunRecord]:
        """Evaluate ``jobs``, returning one record per job in job order."""
        return self.submit(jobs).records()

    def open_stream(self, *, config: SweepConfig | None = None) -> "StreamSession":
        """Open an incremental submit/consume session on this engine."""
        return StreamSession(self, config=config)

    def run_sweep(
        self,
        app: str,
        device: str | DeviceSpec,
        points: list[SweepPoint],
        site: str | None = None,
    ) -> list[RunRecord]:
        """Drop-in for :meth:`ExperimentRunner.run_sweep` through the engine."""
        return self.run_jobs([BatchJob(app, device, pt, site=site) for pt in points])

    def run_point(
        self,
        app: str,
        device: str | DeviceSpec,
        point: SweepPoint,
        site: str | None = None,
    ) -> RunRecord:
        """Drop-in for :meth:`ExperimentRunner.run_point` through the engine."""
        return self.run_jobs([BatchJob(app, device, point, site=site)])[0]

    def close(self) -> None:
        """Release the persistent pool (cache and stats stay readable)."""
        if self._closed:
            return
        self._closed = True
        if self.pool is not None:
            self._sync_pool_stats()
            self.pool.shutdown()

    def __enter__(self) -> "BatchEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class EngineStream:
    """Records for one :meth:`BatchEngine.submit` call, as they land.

    Yields one :class:`RunRecord` per submitted job slot: slots already in
    the engine cache (or satisfied by the checkpoint / preflight) first,
    in job order, then fresh evaluations in completion order — duplicates
    of the same identity yield together.  ``records()`` drains the stream
    and returns the job-ordered list, byte-identical to
    :meth:`BatchEngine.run_jobs`."""

    def __init__(
        self,
        engine: BatchEngine,
        jobs: list[BatchJob],
        keys: list[tuple],
        inner: BatchStream | None,
        cache_hits: int = 0,
        deduped: int = 0,
    ) -> None:
        self._engine = engine
        self._keys = keys
        self._inner = inner
        self.cache_hits = cache_hits
        self.deduped = deduped
        self._ready: deque[int] = deque()
        self._waiting: OrderedDict[tuple, list[int]] = OrderedDict()
        for idx, key in enumerate(keys):
            if key in engine._cache:
                self._ready.append(idx)
            else:
                self._waiting.setdefault(key, []).append(idx)
        self._yielded = 0

    def _promote(self) -> None:
        cache = self._engine._cache
        for key in [k for k in self._waiting if k in cache]:
            self._ready.extend(self._waiting.pop(key))

    def __iter__(self) -> Iterator[RunRecord]:
        return self

    def __next__(self) -> RunRecord:
        while not self._ready and self._inner is not None:
            nxt = next(self._inner, None)
            if nxt is None and self._inner.pending == 0:
                self._inner = None
            self._promote()
        if not self._ready:
            raise StopIteration
        idx = self._ready.popleft()
        self._yielded += 1
        return self._engine._cache[self._keys[idx]]

    @property
    def pending(self) -> int:
        """Job slots not yet yielded."""
        return len(self._keys) - self._yielded

    def records(self) -> list[RunRecord]:
        """Drain the stream; all records in job order."""
        for _ in self:
            pass
        cache = self._engine._cache
        return [cache[key] for key in self._keys]

    def report(self) -> BatchReport:
        """Drain into a blocking-path :class:`BatchReport`.

        Engine cache hits count as ``skipped`` — like checkpoint hits,
        they are slots satisfied without running this call."""
        inner = self._inner
        records = self.records()
        if inner is None:
            return BatchReport(
                records=records,
                evaluated=0,
                skipped=self.cache_hits,
                deduped=self.deduped,
            )
        return BatchReport(
            records=records,
            evaluated=inner.evaluated,
            skipped=inner.skipped + self.cache_hits,
            deduped=inner.deduped + self.deduped,
            pruned=inner.pruned,
            variant_hits=inner.variant_hits,
            baseline_runs=inner.baseline_runs,
            worker_baseline_runs=inner.worker_baseline_runs,
            elapsed=inner.elapsed,
            checkpoint=(
                str(inner.config.checkpoint)
                if inner.config.checkpoint is not None else None
            ),
            extra={"pool_respawns": inner.pool_respawns},
        )

    def close(self) -> None:
        """Stop early; completed work stays absorbed, the rest is dropped."""
        if self._inner is not None:
            self._inner.close()
            self._inner = None


class StreamSession:
    """Incremental submit-one / consume-in-order session on an engine.

    :meth:`put` enqueues one :class:`BatchJob` and returns its integer
    ticket; iteration yields ``(ticket, record)`` strictly in ticket
    order, buffering out-of-order completions, while later tickets keep
    evaluating on the engine's persistent pool.  Because consumption order
    is submission order — not completion order — an algorithm that decides
    its next submission from consumed results (the steady-state
    evolutionary search) behaves identically at any worker count.

    With a serial engine (``workers <= 1``) evaluation happens lazily on
    consumption, in the same order, producing identical records.  The
    session shares the engine's record cache, baseline cache, and crash
    respawn policy; results stream into ``config.checkpoint`` when set
    (the file is *written*, not consulted — the engine cache is the
    in-session dedupe).  This is the interface the ROADMAP's distributed
    work-stealing queue will implement.
    """

    def __init__(self, engine: BatchEngine, *, config: SweepConfig | None = None):
        self._engine = engine
        self._cfg = engine.config.merged(config)
        self._records: dict[int, RunRecord] = {}
        self._next_ticket = 0
        self._next_out = 0
        self._futures: dict = {}
        self._queue: deque = deque()
        self._key_tickets: dict[tuple, list[int]] = {}
        self._vkeys: dict[tuple, str] = {}
        self._respawns_left = MAX_POOL_RESPAWNS
        self._writer = (
            CheckpointWriter(self._cfg.checkpoint)
            if self._cfg.checkpoint is not None else None
        )
        self._serial_base0 = (
            engine.runner.baseline_computes if engine.pool is None else None
        )
        if engine.pool is not None:
            engine.pool.acquire()
        self._closed = False

    # -- submission -----------------------------------------------------
    def put(self, job: BatchJob) -> int:
        """Enqueue one job; returns its ticket (yield order is ticket order)."""
        if self._closed:
            raise RuntimeError("session is closed")
        ticket = self._next_ticket
        self._next_ticket += 1
        engine = self._engine
        key = engine._key(job)
        engine.stats.submitted += 1
        if key in engine._cache:
            engine.stats.cache_hits += 1
            self._records[ticket] = engine._cache[key]
            return ticket
        if key in self._key_tickets:
            engine.stats.deduped += 1
            self._key_tickets[key].append(ticket)
            return ticket
        vcache = engine.variant_cache
        if vcache is not None:
            vkey = vcache.key_for(
                job.app, job.device, job.point, site=job.site,
                seed=engine.runner.seed, problem=engine.runner.problems,
                sanitize=self._cfg.sanitize,
            )
            rec = vcache.get(vkey)
            if rec is not None:
                engine.stats.variant_hits += 1
                engine._cache[key] = rec
                if self._writer is not None:
                    self._writer.write([rec])
                self._records[ticket] = rec
                return ticket
            self._vkeys[key] = vkey
        if engine.pool is None:
            self._key_tickets[key] = [ticket]
            self._queue.append((key, job))
        else:
            self._key_tickets[key] = [ticket]
            self._dispatch(key, job)
        return ticket

    def _dispatch(self, key: tuple, job: BatchJob) -> None:
        baselines = (
            self._engine._baseline_entries(job.app, job.device)
            if self._cfg.share_baselines else None
        )
        payload = [(job.app, job.device, job.point, job.site)]
        try:
            fut = self._engine.pool.submit(
                _run_batch_chunk, payload, self._cfg.retries,
                baselines, self._cfg.sanitize,
            )
        except Exception:  # noqa: BLE001 — broken pool surfaces at submit too
            self._recover([(key, job)])
            return
        self._futures[fut] = (key, job)

    # -- completion -----------------------------------------------------
    def _settle(self, key: tuple, record: RunRecord) -> None:
        self._engine._cache[key] = record
        self._engine.stats.executed += 1
        vkey = self._vkeys.pop(key, None)
        if (
            vkey is not None
            and self._engine.variant_cache is not None
            and not (record.note or "").startswith(("WorkerError", "WorkerCrash"))
        ):
            self._engine.variant_cache.put(vkey, record)
        if self._writer is not None:
            self._writer.write([record])
        for ticket in self._key_tickets.pop(key, []):
            self._records[ticket] = record

    def _recover(self, casualties: list[tuple]) -> None:
        casualties = casualties + list(self._futures.values())
        self._futures.clear()
        if self._respawns_left > 0:
            self._respawns_left -= 1
            self._engine.pool.respawn()
            for key, job in casualties:
                self._dispatch(key, job)
        else:
            why = (
                f"process pool broke {MAX_POOL_RESPAWNS + 1} times; "
                f"job abandoned"
            )
            for key, job in casualties:
                self._settle(key, _crash_record(job, why))

    def _advance(self) -> None:
        """Resolve at least one outstanding identity."""
        engine = self._engine
        if engine.pool is None:
            key, job = self._queue.popleft()
            record = run_point_with_retry(
                engine.runner, job.app, job.device, job.point, site=job.site,
                retries=self._cfg.retries, sanitize=self._cfg.sanitize,
            )
            self._settle(key, record)
            return
        finished, _ = wait(self._futures, return_when=FIRST_COMPLETED)
        casualties = []
        for fut in finished:
            key, job = self._futures.pop(fut)
            try:
                records, _seconds, computes = fut.result()
            except Exception:  # noqa: BLE001 — dead worker broke the pool
                casualties.append((key, job))
                continue
            engine.stats.worker_baseline_runs += computes
            self._settle(key, records[0])
        if casualties:
            self._recover(casualties)

    @property
    def outstanding(self) -> int:
        """Tickets submitted but not yet consumed."""
        return self._next_ticket - self._next_out

    def __iter__(self) -> Iterator[tuple[int, RunRecord]]:
        return self

    def __next__(self) -> tuple[int, RunRecord]:
        if self._next_out >= self._next_ticket:
            raise StopIteration
        try:
            while self._next_out not in self._records:
                self._advance()
        except BaseException:
            self.close()
            raise
        ticket = self._next_out
        self._next_out += 1
        return ticket, self._records.pop(ticket)

    def close(self) -> None:
        """Absorb in-flight work into the engine cache and release the pool."""
        if self._closed:
            return
        self._closed = True
        self._queue.clear()
        while self._futures:
            self._advance()
        if self._writer is not None:
            self._writer.close()
        if self._engine.pool is not None:
            self._engine.pool.release()
        elif self._serial_base0 is not None:
            self._engine.stats.baseline_runs += (
                self._engine.runner.baseline_computes - self._serial_base0
            )
        self._engine._sync_pool_stats()

    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            if not self._closed:
                self._futures.clear()
                self.close()
        except Exception:
            pass
