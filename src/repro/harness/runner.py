"""Experiment runner: executes one DSE configuration end-to-end.

Implements the HPAC execution-harness protocol (§2.3): apply technique +
parameters to the program, run it, and record runtime and error against the
accurate baseline in a results database.  Baselines follow footnote 4: the
original application at its best configuration (each app declares its best
``num_threads`` and ``baseline_items_per_thread``), cached per
(app, device, problem).

Configurations the hardware cannot schedule — AC state exceeding the
shared-memory budget, invalid table sharing — are recorded as *infeasible*
rather than crashing the sweep, the behaviour a real DSE harness needs.
"""

from __future__ import annotations

import sys
import time
from dataclasses import asdict, dataclass, field

from repro.apps.common import AppResult, Benchmark
from repro.errors import ReproError, SharedMemoryError, UnsupportedApproximationError
from repro.gpusim.device import DeviceSpec, get_device
from repro.harness.config import UNSET, SweepConfig, resolve_config
from repro.harness.metrics import convergence_speedup, error, speedup
from repro.harness.sweep import SweepPoint


@dataclass
class RunRecord:
    """One row of the results database."""

    app: str
    device: str
    technique: str
    params: dict
    level: str
    items_per_thread: int
    feasible: bool = True
    note: str = ""
    #: End-to-end speedup over the accurate baseline (paper's default).
    speedup: float = 0.0
    #: Kernel-only speedup (what the paper reports for Blackscholes).
    kernel_speedup: float = 0.0
    #: Error fraction under the app's metric (MAPE or MCR).
    error: float = 0.0
    #: Fraction of region invocations that took the approximate path.
    approx_fraction: float = 0.0
    #: Per-region stats snapshots.
    region_stats: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    @property
    def reported_speedup(self) -> float:
        """Kernel-only for kernel-only apps, end-to-end otherwise."""
        return self.kernel_speedup if self.extra.get("kernel_only") else self.speedup

    @property
    def error_percent(self) -> float:
        return self.error * 100.0

    def to_dict(self) -> dict:
        return asdict(self)


class ExperimentRunner:
    """Runs sweep points for benchmarks on devices, caching baselines."""

    def __init__(self, problems: dict[str, dict] | None = None, seed: int = 2023) -> None:
        #: Per-app problem overrides (e.g. smaller meshes for quick tests).
        self.problems = problems or {}
        self.seed = seed
        self._baselines: dict[tuple, AppResult] = {}
        self._apps: dict[tuple, Benchmark] = {}
        #: Accurate baseline executions this instance actually performed
        #: (cache hits and primed entries excluded) — the batch layer's
        #: "each baseline computed exactly once" counter.
        self.baseline_computes = 0

    # ------------------------------------------------------------------
    def _problem_key(self, app_name: str) -> str:
        """Stable fingerprint of the app's problem override, so caches
        invalidate when ``problems`` is mutated between sweeps."""
        problem = self.problems.get(app_name)
        return repr(sorted(problem.items())) if problem else ""

    def app(self, name: str) -> Benchmark:
        key = (name, self._problem_key(name))
        if key not in self._apps:
            from repro.apps import get_benchmark

            self._apps[key] = get_benchmark(name, problem=self.problems.get(name))
        return self._apps[key]

    def baseline(self, app_name: str, device: str | DeviceSpec) -> AppResult:
        """Accurate run at the app's best configuration, cached per
        (app, device, problem)."""
        dev = get_device(device)
        key = (app_name, dev.name, self._problem_key(app_name))
        if key not in self._baselines:
            app = self.app(app_name)
            self.baseline_computes += 1
            self._baselines[key] = app.run(
                dev,
                regions=None,
                items_per_thread=app.baseline_items_per_thread,
                seed=self.seed,
            )
        return self._baselines[key]

    def export_baselines(self) -> dict[tuple, AppResult]:
        """Snapshot of the baseline cache, keyed (app, device, problem).

        The batch layer ships this to pool workers so each unique
        (app, device) baseline is computed once in the parent instead of
        once per worker."""
        return dict(self._baselines)

    def prime_baselines(self, baselines: dict[tuple, AppResult]) -> None:
        """Seed the baseline cache with results computed elsewhere.

        Keys must come from :meth:`export_baselines` of a runner with the
        same ``problems``/``seed`` (the cache key embeds the problem
        fingerprint, so mismatched entries are simply never hit)."""
        self._baselines.update(baselines)

    # ------------------------------------------------------------------
    def run_point(
        self,
        app_name: str,
        device: str | DeviceSpec,
        point: SweepPoint,
        site: str | None = None,
        sanitize: bool = False,
    ) -> RunRecord:
        """Execute one sweep configuration and compare to the baseline.

        ``sanitize=True`` runs the point under ApproxSan and stores the
        violation report under ``record.extra["approxsan"]`` (dict form).
        Simulated timings — and therefore speedups — are unaffected.
        """
        dev = get_device(device)
        app = self.app(app_name)
        record = RunRecord(
            app=app_name,
            device=dev.name,
            technique=point.technique,
            params=dict(point.params),
            level=point.level,
            items_per_thread=point.items_per_thread,
        )
        base = self.baseline(app_name, dev)
        try:
            regions = app.build_regions(
                point.technique, level=point.level, site=site, **point.params
            )
            result = app.run(
                dev,
                regions,
                items_per_thread=point.items_per_thread,
                seed=self.seed,
                sanitize=sanitize,
            )
        except (SharedMemoryError, UnsupportedApproximationError, ReproError) as exc:
            record.feasible = False
            record.note = f"{type(exc).__name__}: {exc}"
            return record

        record.speedup = speedup(base.seconds, result.seconds)
        record.kernel_speedup = speedup(
            max(base.kernel_seconds, 1e-30), max(result.kernel_seconds, 1e-30)
        )
        record.error = error(app.error_metric, base.qoi, result.qoi)
        stats = result.region_stats or {}
        fractions = [
            s.get("approx_fraction", 0.0) for s in stats.values() if s.get("invocations")
        ]
        record.approx_fraction = max(fractions) if fractions else 0.0
        record.region_stats = stats
        record.extra = {
            "kernel_only": app.kernel_only,
            "num_teams": result.extra.get("num_teams"),
        }
        if sanitize and "approxsan" in result.extra:
            record.extra["approxsan"] = result.extra["approxsan"].to_dict()
        if "iterations" in result.extra:
            record.extra["iterations"] = result.extra["iterations"]
            record.extra["baseline_iterations"] = base.extra.get("iterations")
            if base.extra.get("iterations"):
                record.extra["convergence_speedup"] = convergence_speedup(
                    base.extra["iterations"], result.extra["iterations"]
                )
        return record

    def run_sweep(
        self,
        app_name: str,
        device: str | DeviceSpec,
        points: list[SweepPoint],
        site: str | None = None,
        *,
        config: "SweepConfig | None" = None,
        engine=None,
        **legacy,
    ) -> list[RunRecord]:
        """Run a list of sweep points, returning all records in input order.

        Execution policy lives in ``config`` (a frozen
        :class:`~repro.harness.config.SweepConfig`): ``workers > 1`` fans
        the points out across a process pool; ``checkpoint`` streams
        completed records to a JSONL file and skips points already recorded
        there, so an interrupted sweep resumes where it stopped (see
        :mod:`repro.harness.executor`); ``preflight`` statically vets each
        point first (:mod:`repro.analysis.preflight`) and records the
        provably infeasible ones without simulating them; ``progress`` is
        ``True`` for a stderr line or a callable receiving
        :class:`~repro.harness.reporting.SweepProgress` — honoured by the
        serial path too.  ``engine`` routes the sweep through a persistent
        :class:`~repro.harness.batch.BatchEngine`.  The PR-1 loose keywords
        (``parallel=``, ``checkpoint=``, ...) remain accepted with a
        :class:`DeprecationWarning`."""
        cfg = resolve_config(config, "ExperimentRunner.run_sweep", **legacy)
        if engine is not None or cfg.workers > 1 or cfg.checkpoint is not None or cfg.preflight:
            from repro.harness.executor import run_sweep_parallel

            report = run_sweep_parallel(
                app_name,
                device,
                points,
                site=site,
                problems=self.problems,
                seed=self.seed,
                config=cfg,
                engine=engine,
            )
            return report.records
        # Serial fast path: byte-identical to the pre-executor loop, but
        # progress and sanitize are honoured here too (run_sweep used to
        # silently drop progress callables).
        report_progress = None
        if cfg.progress is True:
            from repro.harness.reporting import format_progress

            def report_progress(p):
                print(format_progress(p), file=sys.stderr)
        elif callable(cfg.progress):
            report_progress = cfg.progress
        records: list[RunRecord] = []
        t0 = time.monotonic()
        feasible = infeasible = 0
        for pt in points:
            rec = self.run_point(
                app_name, device, pt, site=site, sanitize=cfg.sanitize
            )
            records.append(rec)
            feasible += rec.feasible
            infeasible += not rec.feasible
            if report_progress is not None:
                from repro.harness.reporting import SweepProgress

                report_progress(
                    SweepProgress(
                        total=len(points),
                        done=len(records),
                        feasible=feasible,
                        infeasible=infeasible,
                        skipped=0,
                        elapsed=time.monotonic() - t0,
                    )
                )
        return records
