"""Results database for DSE runs.

The HPAC harness "calculates and saves runtime information and error to a
database" (§2.3); this is that component.  Records are
:class:`~repro.harness.runner.RunRecord` rows; the store supports filtered
queries, best-under-error-budget selection (the Fig-6 aggregation), Pareto
frontiers (the speedup/error scatter plots), and JSONL persistence so
sweeps can be resumed or post-processed.
"""

from __future__ import annotations

import gzip
import json
import math
import os
from collections import OrderedDict
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Callable, Iterable

from repro.harness.runner import RunRecord

#: Version of the checkpoint line format.  New checkpoints start with a
#: one-line JSON header ``{"__checkpoint_schema__": N}`` so future format
#: changes can be detected instead of mis-parsed; readers skip the header
#: (and tolerate header-less PR-1 files).
CHECKPOINT_SCHEMA_VERSION = 1
SCHEMA_KEY = "__checkpoint_schema__"


def schema_header_line() -> str:
    return json.dumps({SCHEMA_KEY: CHECKPOINT_SCHEMA_VERSION})


def _is_gz(path: str | Path) -> bool:
    return Path(path).suffix == ".gz"

# --- portable JSON for non-finite floats --------------------------------
# ``json.dumps(float("inf"))`` emits the non-standard literal ``Infinity``,
# which strict parsers (and other languages) reject.  Infeasible/diverged
# records legitimately carry ``inf``/``nan`` errors, so they are encoded as
# sentinel strings and restored on load.
_NONFINITE_ENCODE = {math.inf: "__inf__", -math.inf: "__-inf__"}
_NONFINITE_DECODE = {
    "__inf__": math.inf,
    "__-inf__": -math.inf,
    "__nan__": math.nan,
}


def _encode(obj):
    if isinstance(obj, float):
        if math.isnan(obj):
            return "__nan__"
        if math.isinf(obj):
            return _NONFINITE_ENCODE[obj]
        return obj
    if isinstance(obj, dict):
        return {k: _encode(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_encode(v) for v in obj]
    return obj


def _decode(obj):
    if isinstance(obj, str):
        return _NONFINITE_DECODE.get(obj, obj)
    if isinstance(obj, dict):
        return {k: _decode(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_decode(v) for v in obj]
    return obj


def dumps_record(record: RunRecord) -> str:
    """One strict-JSON line for a record (non-finite floats sentinelled)."""
    return json.dumps(_encode(record.to_dict()), allow_nan=False)


def loads_record(line: str) -> RunRecord:
    """Inverse of :func:`dumps_record`."""
    return RunRecord(**_decode(json.loads(line)))


class CheckpointWriter:
    """Append-mode JSONL sink for streaming records as a sweep runs.

    Each record is written and flushed as one line, so an interrupted sweep
    loses at most the line being written (:meth:`ResultsDB.load` discards a
    truncated final line).  A ``.jsonl.gz`` path writes gzip-compressed
    lines instead (million-record campaigns compress ~10×); appends to an
    existing ``.gz`` file add a new gzip member, which readers concatenate
    transparently.  New files begin with the schema-version header line."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        existing = self.path.exists() and self.path.stat().st_size > 0
        if _is_gz(self.path):
            self._fh = gzip.open(self.path, "at", encoding="utf-8")
            if existing:
                # A crash can leave a truncated final line; appending
                # straight after it would corrupt the next record too.
                # (The tail is found by decompressing — acceptable for the
                # rare resume-after-crash open.)
                last, readable = "", True
                try:
                    with gzip.open(self.path, "rt", encoding="utf-8") as fh:
                        for last in fh:
                            pass
                except (EOFError, OSError):
                    readable = False
                if not readable or (last and not last.endswith("\n")):
                    self._fh.write("\n")
        else:
            self._fh = self.path.open("a")
            if existing:
                with self.path.open("rb") as fh:
                    fh.seek(-1, 2)
                    if fh.read(1) != b"\n":
                        self._fh.write("\n")
        if not existing:
            self._fh.write(schema_header_line() + "\n")
            self._fh.flush()

    def write(self, record: RunRecord | Iterable[RunRecord]) -> None:
        records = [record] if isinstance(record, RunRecord) else record
        for r in records:
            self._fh.write(dumps_record(r) + "\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Row statuses a checkpoint can hold.  ``ok`` is any feasible record;
#: the infeasible ones split by provenance: statically vetoed
#: (``preflight``), lattice-pruned with an ancestor's label (``pruned``,
#: see :mod:`repro.harness.pruning`), lost to worker errors/crashes
#: (``error``), or dynamically infeasible in the simulator (``infeasible``).
RECORD_STATUSES = ("ok", "preflight", "pruned", "error", "infeasible")


def record_status(record: RunRecord) -> str:
    """Classify one checkpoint row (see :data:`RECORD_STATUSES`)."""
    if record.feasible:
        return "ok"
    note = record.note or ""
    if note.startswith("preflight"):
        return "preflight"
    if note.startswith("pruned"):
        return "pruned"
    if note.startswith(("WorkerError", "WorkerCrash")):
        return "error"
    return "infeasible"


#: Merge preference between two records for the same (app, device, label):
#: higher wins.  Evaluated rows outrank everything — ``ok`` first, then
#: ``infeasible`` (the simulator genuinely ran the configuration and
#: rejected it); rows that never entered the simulator (static
#: ``preflight`` veto, lattice ``pruned``) outrank only ``error`` rows,
#: which reflect machine state rather than the configuration.
STATUS_PRIORITY = {"ok": 4, "infeasible": 3, "preflight": 2, "pruned": 1, "error": 0}


@dataclass
class MergeStats:
    """Outcome counters for one :meth:`ResultsDB.merge` call."""

    #: Labels seen for the first time (appended).
    added: int = 0
    #: Duplicate labels whose records were byte-identical (dropped).
    identical: int = 0
    #: Duplicate labels with *differing* records (status or content).
    conflicts: int = 0
    #: Conflicts where the incoming record won (higher status priority).
    replaced: int = 0
    #: Conflicts resolved in favour of the already-held record.
    kept: int = 0

    def __iadd__(self, other: "MergeStats") -> "MergeStats":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self


class ResultsDB:
    """In-memory collection of run records with query helpers."""

    def __init__(self, records: Iterable[RunRecord] | None = None) -> None:
        self.records: list[RunRecord] = list(records or [])

    def add(self, record: RunRecord | list[RunRecord]) -> None:
        if isinstance(record, list):
            self.records.extend(record)
        else:
            self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ------------------------------------------------------------------
    def query(
        self,
        app: str | None = None,
        device: str | None = None,
        technique: str | None = None,
        level: str | None = None,
        feasible: bool | None = True,
        predicate: Callable[[RunRecord], bool] | None = None,
        status: str | None = None,
    ) -> list[RunRecord]:
        """Filter records; ``device`` matches on substring (vendor or name).

        ``status`` selects one :data:`RECORD_STATUSES` class and subsumes
        the ``feasible`` filter (which is ignored when ``status`` is
        given): ``status="pruned"`` returns the lattice-pruned rows,
        ``status="ok"`` equals ``feasible=True``."""
        if status is not None and status not in RECORD_STATUSES:
            raise ValueError(
                f"unknown status {status!r}; expected one of {RECORD_STATUSES}"
            )
        out = []
        for r in self.records:
            if app is not None and r.app != app:
                continue
            if device is not None and device.lower() not in r.device.lower():
                continue
            if technique is not None and r.technique != technique:
                continue
            if level is not None and r.level != level:
                continue
            if status is not None:
                if record_status(r) != status:
                    continue
            elif feasible is not None and r.feasible != feasible:
                continue
            if predicate is not None and not predicate(r):
                continue
            out.append(r)
        return out

    def merge(self, other: "ResultsDB | Iterable[RunRecord]") -> MergeStats:
        """Fold ``other``'s records in, deduplicating by checkpoint identity.

        Identity is ``(app, device, point label)`` — the same key the
        checkpoint resume path and the campaign shard manifests use.  When
        both sides hold a record for one identity the winner is chosen
        *deterministically* by :data:`STATUS_PRIORITY`, never by file
        order: an evaluated (``ok``) record beats a ``pruned`` or
        ``preflight`` row from another shard (one shard may have
        lattice-pruned a point a different shard actually simulated), and
        ``error`` rows — worker crashes, not properties of the point —
        lose to everything.  Ties on priority keep the record already
        held (first-seen order), so merging A then B and B then A disagree
        only on genuinely ambiguous pairs, which are counted as conflicts
        either way.  Byte-identical duplicates are dropped silently into
        the ``identical`` counter.

        The held record's list position is preserved on replacement, so a
        merge never reorders ``self.records``."""
        from repro.harness.sweep import SweepPoint

        def key_of(rec: RunRecord) -> tuple:
            return (rec.app, rec.device, SweepPoint.of_record(rec).label())

        stats = MergeStats()
        index: dict[tuple, int] = {
            key_of(rec): i for i, rec in enumerate(self.records)
        }
        records = other.records if isinstance(other, ResultsDB) else other
        for rec in records:
            key = key_of(rec)
            held_at = index.get(key)
            if held_at is None:
                index[key] = len(self.records)
                self.records.append(rec)
                stats.added += 1
                continue
            held = self.records[held_at]
            if held.to_dict() == rec.to_dict():
                stats.identical += 1
                continue
            stats.conflicts += 1
            if STATUS_PRIORITY[record_status(rec)] > STATUS_PRIORITY[
                record_status(held)
            ]:
                self.records[held_at] = rec
                stats.replaced += 1
            else:
                stats.kept += 1
        return stats

    def status_counts(self, **filters) -> dict[str, int]:
        """Row count per :data:`RECORD_STATUSES` class (campaign triage)."""
        counts = {s: 0 for s in RECORD_STATUSES}
        for r in self.query(feasible=None, **filters):
            counts[record_status(r)] += 1
        return counts

    def best_speedup(
        self,
        max_error: float = 0.10,
        **filters,
    ) -> RunRecord | None:
        """Fastest configuration with error below ``max_error`` (Fig 6)."""
        candidates = [
            r for r in self.query(**filters) if r.error <= max_error
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda r: r.reported_speedup)

    def pareto_frontier(self, **filters) -> list[RunRecord]:
        """Error/speedup Pareto-optimal records (lower error, higher speedup)."""
        records = sorted(self.query(**filters), key=lambda r: (r.error, -r.reported_speedup))
        frontier: list[RunRecord] = []
        best = -float("inf")
        for r in records:
            if r.reported_speedup > best:
                frontier.append(r)
                best = r.reported_speedup
        return frontier

    def error_intervals(self, bins: int = 10, **filters) -> list[list[RunRecord]]:
        """Split records into equal error intervals (the paper's
        overplotting reduction: "we divide the error range for each
        benchmark into ten equally-sized intervals", §4)."""
        records = [r for r in self.query(**filters) if r.error < float("inf")]
        if not records:
            return []
        errs = [r.error for r in records]
        lo, hi = min(errs), max(errs)
        width = (hi - lo) / bins or 1.0
        buckets: list[list[RunRecord]] = [[] for _ in range(bins)]
        for r in records:
            i = min(int((r.error - lo) / width), bins - 1)
            buckets[i].append(r)
        return buckets

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist as JSON Lines (strict JSON, see :func:`dumps_record`).

        A ``.jsonl.gz`` path writes gzip-compressed lines."""
        p = Path(path)
        fh = gzip.open(p, "wt", encoding="utf-8") if _is_gz(p) else p.open("w")
        with fh:
            for r in self.records:
                fh.write(dumps_record(r) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "ResultsDB":
        """Load a JSONL / ``.jsonl.gz`` file written by :meth:`save` or a
        checkpoint stream.

        The schema-version header line (new checkpoints) is skipped; files
        without one (PR-1 checkpoints) load identically.  Lines torn by a
        crash mid-write — and, for ``.gz``, a truncated final gzip member —
        are skipped with a warning: losing one point re-runs it, aborting
        loses the campaign."""
        db = cls()
        torn = 0
        truncated = False
        lines: list[str] = []
        if _is_gz(path):
            try:
                with gzip.open(path, "rt", encoding="utf-8") as fh:
                    for line in fh:
                        lines.append(line)
            except (EOFError, OSError):
                truncated = True
        else:
            lines = Path(path).read_text().splitlines()
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                torn += 1
                continue
            if isinstance(obj, dict) and SCHEMA_KEY in obj:
                continue  # schema-version header
            try:
                db.add(RunRecord(**_decode(obj)))
            except TypeError:
                torn += 1
        if torn or truncated:
            import warnings

            what = f"skipped {torn} torn record line(s)" if torn else ""
            if truncated:
                what += ("; " if what else "") + "truncated gzip stream"
            warnings.warn(
                f"{path}: {what}; the affected points will re-run",
                stacklevel=2,
            )
        return db


def compact_checkpoint(
    path: str | Path, output: str | Path | None = None
) -> tuple[int, int]:
    """Dedupe a checkpoint's re-run labels, keeping the latest record.

    A resumed/re-driven campaign can legitimately append a label twice
    (retry semantics changed, a technique re-swept); readers take whichever
    record they see last, but the dead lines cost load time forever.  This
    rewrites the file with exactly one record per (app, device, point
    label) — first-occurrence order, latest content — behind the
    schema-version header.

    ``output=None`` replaces ``path`` atomically; otherwise the compacted
    stream is written to ``output`` (whose suffix decides compression, so
    ``compact_checkpoint("c.jsonl", "c.jsonl.gz")`` also converts).
    Returns ``(kept, dropped)`` record counts."""
    from repro.harness.sweep import SweepPoint

    src = Path(path)
    records = ResultsDB.load(src).records
    latest: "OrderedDict[tuple, RunRecord]" = OrderedDict()
    for rec in records:
        latest[(rec.app, rec.device, SweepPoint.of_record(rec).label())] = rec
    dest = Path(output) if output is not None else src
    tmp = dest.with_name(f".{dest.stem}.compact{dest.suffix}")
    if tmp.exists():
        tmp.unlink()
    with CheckpointWriter(tmp) as writer:
        writer.write(list(latest.values()))
    os.replace(tmp, dest)
    return len(latest), len(records) - len(latest)
