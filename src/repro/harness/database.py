"""Results database for DSE runs.

The HPAC harness "calculates and saves runtime information and error to a
database" (§2.3); this is that component.  Records are
:class:`~repro.harness.runner.RunRecord` rows; the store supports filtered
queries, best-under-error-budget selection (the Fig-6 aggregation), Pareto
frontiers (the speedup/error scatter plots), and JSONL persistence so
sweeps can be resumed or post-processed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterable

from repro.harness.runner import RunRecord


class ResultsDB:
    """In-memory collection of run records with query helpers."""

    def __init__(self, records: Iterable[RunRecord] | None = None) -> None:
        self.records: list[RunRecord] = list(records or [])

    def add(self, record: RunRecord | list[RunRecord]) -> None:
        if isinstance(record, list):
            self.records.extend(record)
        else:
            self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ------------------------------------------------------------------
    def query(
        self,
        app: str | None = None,
        device: str | None = None,
        technique: str | None = None,
        level: str | None = None,
        feasible: bool | None = True,
        predicate: Callable[[RunRecord], bool] | None = None,
    ) -> list[RunRecord]:
        """Filter records; ``device`` matches on substring (vendor or name)."""
        out = []
        for r in self.records:
            if app is not None and r.app != app:
                continue
            if device is not None and device.lower() not in r.device.lower():
                continue
            if technique is not None and r.technique != technique:
                continue
            if level is not None and r.level != level:
                continue
            if feasible is not None and r.feasible != feasible:
                continue
            if predicate is not None and not predicate(r):
                continue
            out.append(r)
        return out

    def best_speedup(
        self,
        max_error: float = 0.10,
        **filters,
    ) -> RunRecord | None:
        """Fastest configuration with error below ``max_error`` (Fig 6)."""
        candidates = [
            r for r in self.query(**filters) if r.error <= max_error
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda r: r.reported_speedup)

    def pareto_frontier(self, **filters) -> list[RunRecord]:
        """Error/speedup Pareto-optimal records (lower error, higher speedup)."""
        records = sorted(self.query(**filters), key=lambda r: (r.error, -r.reported_speedup))
        frontier: list[RunRecord] = []
        best = -float("inf")
        for r in records:
            if r.reported_speedup > best:
                frontier.append(r)
                best = r.reported_speedup
        return frontier

    def error_intervals(self, bins: int = 10, **filters) -> list[list[RunRecord]]:
        """Split records into equal error intervals (the paper's
        overplotting reduction: "we divide the error range for each
        benchmark into ten equally-sized intervals", §4)."""
        records = [r for r in self.query(**filters) if r.error < float("inf")]
        if not records:
            return []
        errs = [r.error for r in records]
        lo, hi = min(errs), max(errs)
        width = (hi - lo) / bins or 1.0
        buckets: list[list[RunRecord]] = [[] for _ in range(bins)]
        for r in records:
            i = min(int((r.error - lo) / width), bins - 1)
            buckets[i].append(r)
        return buckets

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist as JSON Lines."""
        p = Path(path)
        with p.open("w") as fh:
            for r in self.records:
                fh.write(json.dumps(r.to_dict()) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "ResultsDB":
        """Load a JSONL file written by :meth:`save`."""
        db = cls()
        with Path(path).open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                db.add(RunRecord(**json.loads(line)))
        return db
