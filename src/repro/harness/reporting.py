"""Plain-text reporting of sweep results and figure reproductions.

The benches print these tables so the bench output reads like the paper's
evaluation section: one block per table/figure with the same rows/series.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.runner import RunRecord


@dataclass
class SweepProgress:
    """Throughput snapshot emitted by the parallel sweep executor."""

    total: int
    done: int
    feasible: int
    infeasible: int
    skipped: int
    elapsed: float
    #: Duplicate job slots collapsed to a single evaluation (batch layer).
    deduped: int = 0

    @property
    def points_per_sec(self) -> float:
        return self.done / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def eta_seconds(self) -> float:
        rate = self.points_per_sec
        return (self.total - self.done) / rate if rate > 0 else float("inf")


def format_progress(p: SweepProgress) -> str:
    """One status line: ``[done/total] pct  rate  ETA  feas/infeas``."""
    pct = 100.0 * p.done / p.total if p.total else 100.0
    eta = p.eta_seconds
    eta_s = f"{eta:6.1f}s" if eta != float("inf") else "     --"
    return (
        f"[{p.done}/{p.total}] {pct:5.1f}%  {p.points_per_sec:7.2f} pts/s  "
        f"ETA {eta_s}  feasible={p.feasible} infeasible={p.infeasible}"
        + (f" (resumed past {p.skipped})" if p.skipped else "")
        + (f" (deduped {p.deduped})" if p.deduped else "")
    )


def format_engine_stats(stats) -> str:
    """One summary line for a :class:`~repro.harness.batch.EngineStats`."""
    spawns = getattr(stats, "pool_spawns", 0)
    respawns = getattr(stats, "pool_respawns", 0)
    pool = ""
    if spawns:
        pool = f"; {spawns} pool spawn{'s' if spawns != 1 else ''}"
        if respawns:
            pool += f" ({respawns} after crashes)"
    return (
        f"batch engine: {stats.submitted} jobs submitted, "
        f"{stats.executed} simulated, {stats.cache_hits} served from cache, "
        f"{stats.deduped} deduped in-call, {stats.skipped} from checkpoint, "
        f"{stats.pruned} pruned; {stats.baseline_runs} baselines computed "
        f"({stats.worker_baseline_runs} redundantly in workers) "
        f"in {stats.elapsed:.2f}s"
        + pool
    )


def format_record(r: RunRecord) -> str:
    """One-line summary of a run record."""
    if not r.feasible:
        return f"{r.app:<12} {r.technique:<6} INFEASIBLE ({r.note.splitlines()[0][:50]})"
    pieces = ":".join(f"{v}" for _, v in sorted(r.params.items()))
    return (
        f"{r.app:<12} {r.technique:<6} [{pieces:<18}] lvl={r.level:<6} "
        f"ipt={r.items_per_thread:<4} speedup={r.reported_speedup:6.3f} "
        f"err%={r.error_percent:9.4f} approx={r.approx_fraction:5.3f}"
    )


def format_records_table(records: list[RunRecord], title: str = "") -> str:
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    lines.extend(format_record(r) for r in records)
    return "\n".join(lines)


def format_fig6(result, apps: list[str], devices: list[str]) -> str:
    """Render the Fig-6 best-speedup bars as a text table."""
    lines = ["Fig 6 — highest speedup with error < 10%"]
    header = f"{'benchmark':<14}" + "".join(
        f"{t:>10}" for t in ("perfo", "taf", "iact")
    )
    for dkey in devices:
        lines.append(f"\n[{dkey}]  (geomean of per-app best: "
                     f"{result.geomean.get(dkey, float('nan')):.3f}x)")
        lines.append(header)
        for app in apps:
            row = result.row(dkey, app)
            cells = []
            for t in ("perfo", "taf", "iact"):
                rec = row.get(t)
                cells.append(f"{rec.reported_speedup:9.2f}x" if rec else "       --")
            lines.append(f"{app:<14}" + "".join(cells))
    return "\n".join(lines)


def format_series(series, header: str = "") -> str:
    """Render (x, y, ...) tuples as aligned columns."""
    lines = [header] if header else []
    for row in series:
        lines.append("  ".join(
            f"{v:>10.4f}" if isinstance(v, float) else f"{v:>10}" for v in row
        ))
    return "\n".join(lines)
