"""DSE harness: sweeps, metrics, results database, figure reproductions.

The software equivalent of the paper's execution harness (§2.3): it applies
a technique + parameters to a benchmark, executes it, and records runtime
and error into a queryable database; :mod:`repro.harness.figures` drives it
to regenerate every evaluation figure.
"""

from repro.harness.batch import (
    AdaptiveChunker,
    BatchEngine,
    BatchJob,
    BatchReport,
    BatchStream,
    EngineStats,
    EngineStream,
    StreamSession,
    WorkerPool,
    run_batch,
)
from repro.harness.config import SweepConfig, resolve_config
from repro.harness.database import CheckpointWriter, ResultsDB, compact_checkpoint
from repro.harness.executor import SweepReport, run_sweep_parallel
from repro.harness.reporting import format_engine_stats
from repro.harness.metrics import (
    convergence_speedup,
    error,
    geomean_speedup,
    mape,
    mcr,
    r_squared,
    speedup,
)
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.harness.search import SearchResult, evolutionary_search, random_search
from repro.harness.sensitivity import (
    SiteSensitivity,
    analyze_sensitivity,
    format_sensitivity,
)
from repro.harness.sweep import (
    MEMO_ITEMS_PER_THREAD,
    SweepPoint,
    chunk_points,
    full_space_size,
    table2_space,
)

__all__ = [
    "AdaptiveChunker",
    "BatchEngine",
    "BatchJob",
    "BatchReport",
    "BatchStream",
    "CheckpointWriter",
    "EngineStats",
    "EngineStream",
    "ExperimentRunner",
    "StreamSession",
    "SweepConfig",
    "WorkerPool",
    "resolve_config",
    "compact_checkpoint",
    "format_engine_stats",
    "run_batch",
    "MEMO_ITEMS_PER_THREAD",
    "ResultsDB",
    "SweepReport",
    "chunk_points",
    "run_sweep_parallel",
    "RunRecord",
    "SearchResult",
    "SiteSensitivity",
    "analyze_sensitivity",
    "SweepPoint",
    "convergence_speedup",
    "error",
    "evolutionary_search",
    "format_sensitivity",
    "full_space_size",
    "geomean_speedup",
    "mape",
    "random_search",
    "mcr",
    "r_squared",
    "speedup",
    "table2_space",
]
