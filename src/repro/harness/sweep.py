"""Design-space-exploration parameter grids (Table 2).

The paper explores the Cartesian product of the Table-2 grids per
benchmark, technique, and platform — 57,288 configurations in total, up to
988 GPU-hours per benchmark.  :func:`table2_space` reproduces the full
grids; the default ``thinned=True`` subsamples each axis so the figure
benches run in laptop time (DESIGN.md §3, "Scale substitutions").

Apps may scale the threshold axis: region outputs live on different
numeric scales (e.g. LavaMD memoizes a force accumulator whose RSD is
naturally small), so each benchmark declares ``taf_threshold_scale`` /
``iact_threshold_scale`` multipliers, the knob a user of the real system
would tune per region.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.gpusim.device import DeviceSpec, get_device

# --- Table 2, verbatim -------------------------------------------------
TAF_HSIZE = [1, 2, 3, 4, 5]
TAF_PSIZE = [2, 4, 8, 16, 32, 64, 128, 256, 512]
TAF_THRESH = [0.3, 0.6, 0.9, 1.2, 1.5, 3.0, 5.0, 20.0]

IACT_TPERWARP = [1, 2, 16, 32]  # "Only the AMD platform uses 64"
IACT_TPERWARP_AMD = [1, 2, 16, 32, 64]
IACT_TSIZE = [1, 2, 4, 8]
IACT_THRESH = [0.1, 0.3, 0.5, 0.7, 0.9, 3.0, 5.0, 20.0]

PERFO_SKIP = [2, 4, 8, 16, 32, 64]
PERFO_SKIP_PERCENT = [10, 20, 30, 40, 50, 60, 70, 80, 90]

MEMO_HIERARCHY = ["thread", "warp"]
MEMO_ITEMS_PER_THREAD = [8, 16, 32, 64, 128, 256, 512]

# --- thinned axes used by the default benches ---------------------------
_THIN = {
    "hsize": [1, 2, 4],
    "psize": [4, 16, 64],
    "taf_thresh": [0.3, 0.9, 3.0, 20.0],
    "tperwarp": [1, 32],
    "tsize": [2, 8],
    "iact_thresh": [0.1, 0.5, 3.0],
    "skip": [2, 8, 32],
    "skip_percent": [10, 50, 90],
    "items": [8, 64, 512],
    "hierarchy": ["thread", "warp"],
}


@dataclass(frozen=True)
class SweepPoint:
    """One configuration in the DSE space."""

    technique: str
    params: dict = field(hash=False)
    level: str = "thread"
    items_per_thread: int = 8

    def label(self) -> str:
        # The label is the point's identity across dedupe, checkpoint
        # resume, and search `seen` sets — computed once per instance
        # (frozen, so object.__setattr__ backdoors the cache in).
        cached = self.__dict__.get("_label")
        if cached is None:
            inner = ":".join(f"{k}={v}" for k, v in sorted(self.params.items()))
            cached = (
                f"{self.technique}({inner}) "
                f"level={self.level} ipt={self.items_per_thread}"
            )
            object.__setattr__(self, "_label", cached)
        return cached

    @classmethod
    def of_record(cls, record) -> "SweepPoint":
        """Reconstruct the point a :class:`~repro.harness.runner.RunRecord`
        was run at — the checkpoint identity used to resume sweeps.  Params
        survive the JSONL round-trip unchanged (ints/floats/bools), so
        ``SweepPoint.of_record(rec).label()`` matches the original label."""
        return cls(
            record.technique,
            dict(record.params),
            level=record.level,
            items_per_thread=record.items_per_thread,
        )


#: Hierarchy levels ordered by AC-state sharing aggressiveness: a warp-level
#: table is shared by all lanes, a team-level table by the whole block.
#: The pruning lattice and the surrogate's feature vector both use this
#: ordinal (see :mod:`repro.harness.pruning`).
LEVEL_ORDER = {"thread": 0, "warp": 1, "team": 2}

#: Stable encoding for the non-numeric param values that appear in Table-2
#: grids (perforation kinds, the herded flag).
_CATEGORICAL_CODES = {"small": 0.0, "large": 1.0, "ini": 2.0, "fini": 3.0}


def point_features(point: SweepPoint) -> list[float]:
    """Deterministic numeric feature vector for one sweep point.

    The surrogate regressor (:class:`repro.harness.pruning.Surrogate`) fits
    error/speedup models over these features.  Layout: a bias term, then for
    each param key in sorted order its value and ``log1p(|value|)`` (the
    Table-2 axes are geometric, so the log term lets a linear model track
    them), then the hierarchy-level ordinal and ``log2`` of items-per-thread.
    Points of one technique share a key set, so vectors within a technique
    are directly comparable.
    """
    import math

    feats = [1.0]
    for key in sorted(point.params):
        val = point.params[key]
        if isinstance(val, bool):
            num = 1.0 if val else 0.0
        elif isinstance(val, (int, float)):
            num = float(val)
        else:
            num = _CATEGORICAL_CODES.get(str(val), -1.0)
        feats.append(num)
        feats.append(math.log1p(abs(num)))
    feats.append(float(LEVEL_ORDER.get(point.level, len(LEVEL_ORDER))))
    feats.append(math.log2(max(1, point.items_per_thread)))
    return feats


def chunk_points(
    points: list[SweepPoint], chunk_size: int
) -> list[list[SweepPoint]]:
    """Contiguous chunks of at most ``chunk_size`` points (executor shards)."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [points[i : i + chunk_size] for i in range(0, len(points), chunk_size)]


def _taf_axes(thinned: bool) -> tuple[list, list, list]:
    if thinned:
        return _THIN["hsize"], _THIN["psize"], _THIN["taf_thresh"]
    return TAF_HSIZE, TAF_PSIZE, TAF_THRESH


def _iact_axes(device: DeviceSpec, thinned: bool) -> tuple[list, list, list]:
    if thinned:
        return _THIN["tperwarp"], _THIN["tsize"], _THIN["iact_thresh"]
    tpw = IACT_TPERWARP_AMD if device.vendor == "amd" else IACT_TPERWARP
    return tpw, IACT_TSIZE, IACT_THRESH


def table2_space(
    technique: str,
    device: str | DeviceSpec = "v100",
    thinned: bool = True,
    hierarchy_levels: list[str] | None = None,
    items_per_thread: list[int] | None = None,
    threshold_scale: float = 1.0,
) -> list[SweepPoint]:
    """Enumerate the Table-2 grid for one technique.

    ``thinned=False`` reinstates the paper's full grid.  ``threshold_scale``
    multiplies the threshold axis (per-region output scale, see module
    docstring).
    """
    dev = get_device(device)
    levels = hierarchy_levels or (
        _THIN["hierarchy"] if thinned else MEMO_HIERARCHY
    )
    items = items_per_thread or (
        _THIN["items"] if thinned else MEMO_ITEMS_PER_THREAD
    )
    points: list[SweepPoint] = []
    t = technique.lower()
    if t == "taf":
        hsizes, psizes, threshs = _taf_axes(thinned)
        for h, ps, thr, lvl, ipt in itertools.product(
            hsizes, psizes, threshs, levels, items
        ):
            points.append(
                SweepPoint(
                    "taf",
                    {"hsize": h, "psize": ps, "threshold": thr * threshold_scale},
                    level=lvl,
                    items_per_thread=ipt,
                )
            )
    elif t == "iact":
        tpws, tsizes, threshs = _iact_axes(dev, thinned)
        for tpw, ts, thr, lvl, ipt in itertools.product(
            tpws, tsizes, threshs, levels, items
        ):
            if tpw > dev.warp_size:
                continue  # 64 tables/warp only fits AMD wavefronts
            points.append(
                SweepPoint(
                    "iact",
                    {
                        "tsize": ts,
                        "threshold": thr * threshold_scale,
                        "tperwarp": tpw,
                    },
                    level=lvl,
                    items_per_thread=ipt,
                )
            )
    elif t == "perfo":
        skips = _THIN["skip"] if thinned else PERFO_SKIP
        pcts = _THIN["skip_percent"] if thinned else PERFO_SKIP_PERCENT
        # small/large explore Items per Thread (Table 2 note); ini/fini are
        # bound adjustments and use the default distribution.
        for kind in ("small", "large"):
            for M, herded, ipt in itertools.product(skips, (False, True), items):
                points.append(
                    SweepPoint(
                        "perfo",
                        {"kind": kind, "skip": M, "herded": herded},
                        items_per_thread=ipt,
                    )
                )
        for kind in ("ini", "fini"):
            for pct in pcts:
                points.append(
                    SweepPoint(
                        "perfo",
                        {"kind": kind, "skip_percent": pct},
                        items_per_thread=items[0],
                    )
                )
    else:
        raise ValueError(f"unknown technique {technique!r}")
    return points


def full_space_size(device: str | DeviceSpec = "v100") -> int:
    """Total configurations in the un-thinned Table-2 product (one app)."""
    return sum(
        len(table2_space(t, device, thinned=False)) for t in ("taf", "iact", "perfo")
    )
