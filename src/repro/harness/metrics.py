"""Error and speedup metrics of the evaluation (§4, eqs. 1-2).

* :func:`mape` — mean absolute percentage error between the accurate and
  approximate QoI vectors (paper eq. 1); returned as a *fraction* (0.1 =
  10%).  A tiny denominator guard keeps the metric defined when an
  accurate output is exactly zero (the paper's benchmarks avoid this by
  construction; MiniFE's blow-up produces astronomically large values
  either way).
* :func:`mcr` — misclassification rate (paper eq. 2), used for K-Means.
* :func:`speedup`, :func:`geomean_speedup` — runtime ratios; the paper's
  headline "geomean speedup 1.42×" aggregates per-benchmark bests this way.
* :func:`convergence_speedup` and :func:`r_squared` — the Fig-12c analysis
  (iteration-count ratio and its correlation with time speedup).
"""

from __future__ import annotations

import numpy as np


def mape(accurate: np.ndarray, approximate: np.ndarray, eps: float = 1e-30) -> float:
    """Mean absolute percentage error (fraction), paper eq. (1)."""
    acc = np.asarray(accurate, dtype=np.float64).reshape(-1)
    ap = np.asarray(approximate, dtype=np.float64).reshape(-1)
    if acc.shape != ap.shape:
        raise ValueError(f"shape mismatch: {acc.shape} vs {ap.shape}")
    if acc.size == 0:
        raise ValueError("empty QoI vectors")
    denom = np.maximum(np.abs(acc), eps)
    err = np.abs(acc - ap) / denom
    if not np.all(np.isfinite(ap)):
        return float("inf")
    return float(err.mean())


def mcr(accurate: np.ndarray, approximate: np.ndarray) -> float:
    """Misclassification rate (fraction), paper eq. (2)."""
    acc = np.asarray(accurate).reshape(-1)
    ap = np.asarray(approximate).reshape(-1)
    if acc.shape != ap.shape:
        raise ValueError(f"shape mismatch: {acc.shape} vs {ap.shape}")
    if acc.size == 0:
        raise ValueError("empty QoI vectors")
    return float(np.mean(acc != ap))


METRICS = {"mape": mape, "mcr": mcr}


def error(metric: str, accurate: np.ndarray, approximate: np.ndarray) -> float:
    """Dispatch to the named error metric; returns a fraction."""
    try:
        fn = METRICS[metric]
    except KeyError:
        raise ValueError(f"unknown error metric {metric!r}") from None
    return fn(accurate, approximate)


def speedup(accurate_seconds: float, approximate_seconds: float) -> float:
    """End-to-end speedup of the approximate run over the baseline."""
    if approximate_seconds <= 0:
        raise ValueError("approximate runtime must be positive")
    return float(accurate_seconds) / float(approximate_seconds)


def geomean_speedup(speedups) -> float:
    """Geometric mean of a collection of speedups."""
    arr = np.asarray(list(speedups), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no speedups to aggregate")
    if np.any(arr <= 0):
        raise ValueError("speedups must be positive")
    return float(np.exp(np.log(arr).mean()))


def convergence_speedup(accurate_iters: int, approximate_iters: int) -> float:
    """Fig 12c: n/a for accurate n and approximate a iterations."""
    if approximate_iters <= 0:
        raise ValueError("approximate iteration count must be positive")
    return float(accurate_iters) / float(approximate_iters)


def r_squared(x, y) -> float:
    """Coefficient of determination of the least-squares line y ~ x."""
    x = np.asarray(list(x), dtype=np.float64)
    y = np.asarray(list(y), dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two paired samples")
    ss_tot = float(((y - y.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0
    slope, intercept = np.polyfit(x, y, 1)
    resid = y - (slope * x + intercept)
    return 1.0 - float((resid**2).sum()) / ss_tot
