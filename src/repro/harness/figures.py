"""Per-figure reproduction entry points.

One function per table/figure of the paper's evaluation (the benches in
``benchmarks/`` call these and print the same rows/series the paper
reports).  Each function runs a curated mini-sweep — dense enough to show
the figure's shape, small enough for laptop time; ``effort="full"``
switches to the thinned Table-2 grids and ``effort="paper"`` to the full
grids (hours).

Every simulation-backed figure builds its whole ``device × app ×
technique × point`` grid as one job list and evaluates it through the
batch layer (:mod:`repro.harness.batch`): ``parallel=N`` fans the grid
across N workers with shared baselines and adaptive chunks, and passing
one :class:`~repro.harness.batch.BatchEngine` to several figures dedupes
their overlapping points (Fig 6 and Fig 7 share the LULESH grid).  With
``parallel=0`` and no engine the figure runs serially through the given
runner, byte-identical to the pre-batch behaviour.

The curated candidate grids below were chosen exactly the way the paper's
users would use the HPAC-Offload harness: sweep, look at the database, keep
the parameter regions that matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.approx.base import TAFParams
from repro.approx.taf_variants import compare_variants
from repro.gpusim.device import get_device
from repro.gpusim.memory import global_memory_fraction_for_tables
from repro.harness.batch import BatchEngine, BatchJob
from repro.harness.config import SweepConfig
from repro.harness.database import ResultsDB
from repro.harness.metrics import geomean_speedup, r_squared
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.harness.sweep import SweepPoint, table2_space

#: Devices used by the figure benches: 1/10-scale V100 and MI250X.
NVIDIA = "v100_small"
AMD = "amd_small"
DEVICES = {"nvidia": NVIDIA, "amd": AMD}


# ---------------------------------------------------------------------------
# Curated sweep points per (app, technique): the interesting region of
# Table 2 at this problem scale.
# ---------------------------------------------------------------------------
def _taf(h, p, t, level="thread", ipt=8):
    return SweepPoint("taf", {"hsize": h, "psize": p, "threshold": t}, level, ipt)


def _iact(ts, t, tpw, level="thread", ipt=8):
    return SweepPoint("iact", {"tsize": ts, "threshold": t, "tperwarp": tpw}, level, ipt)


def _perfo(kind, val, herded=False, ipt=8):
    key = "skip" if kind in ("small", "large") else "skip_percent"
    params = {"kind": kind, key: val}
    if kind in ("small", "large"):
        params["herded"] = herded
    return SweepPoint("perfo", params, "thread", ipt)


CANDIDATES: dict[tuple[str, str], list[SweepPoint]] = {
    ("lulesh", "taf"): [
        _taf(2, 4, 0.3), _taf(2, 8, 0.9), _taf(1, 4, 0.9), _taf(4, 8, 0.3),
        _taf(2, 16, 3.0),
    ],
    ("lulesh", "iact"): [
        _iact(4, 0.02, 32), _iact(4, 0.05, 32), _iact(2, 0.02, 16),
        _iact(8, 0.1, 16),
    ],
    ("lulesh", "perfo"): [
        _perfo("fini", 50), _perfo("fini", 70), _perfo("fini", 90),
        _perfo("ini", 10), _perfo("small", 2, herded=True),
        _perfo("small", 4, herded=True), _perfo("small", 4, herded=False),
        _perfo("large", 4, herded=True),
    ],
    ("leukocyte", "taf"): [
        _taf(2, 8, 0.01), _taf(2, 16, 0.05), _taf(2, 32, 0.1), _taf(2, 32, 0.3),
        _taf(4, 64, 0.3),
    ],
    ("leukocyte", "iact"): [
        _iact(4, 0.05, 8), _iact(4, 0.1, 8), _iact(8, 0.3, 4),
    ],
    ("binomial", "taf"): [
        _taf(2, 8, 0.3, "team", 32), _taf(2, 32, 0.3, "team", 128),
        _taf(2, 32, 0.3, "team", 512), _taf(2, 16, 0.9, "team", 512),
        _taf(1, 32, 0.9, "team", 512),
    ],
    ("binomial", "iact"): [
        _iact(8, 0.1, 2, "team", 128), _iact(8, 0.3, 2, "team", 512),
        _iact(8, 0.1, 2, "team", 512), _iact(4, 0.3, 1, "team", 512),
    ],
    ("minife", "taf"): [
        _taf(2, 4, 0.3), _taf(2, 8, 0.9), _taf(1, 8, 3.0),
    ],
    ("blackscholes", "taf"): [
        _taf(1, 8, 0.3, ipt=1), _taf(5, 16, 0.3), _taf(5, 16, 0.9),
        _taf(2, 8, 0.3), _taf(1, 4, 0.3, ipt=2),
    ],
    ("blackscholes", "iact"): [
        _iact(2, 0.3, None, ipt=2), _iact(4, 0.3, None, ipt=4),
        _iact(8, 0.3, None, ipt=8, level="thread"),
    ],
    ("lavamd", "taf"): [
        _taf(2, 4, 0.006, ipt=1), _taf(2, 4, 0.009, ipt=1), _taf(2, 4, 0.016, ipt=1),
        _taf(2, 8, 0.016, ipt=1), _taf(1, 8, 0.03, ipt=1),
        _taf(2, 4, 0.009, "warp", 1), _taf(2, 8, 0.016, "warp", 1),
    ],
    ("lavamd", "iact"): [
        _iact(8, 0.3, 1, ipt=1), _iact(8, 0.5, 2, ipt=1), _iact(4, 0.9, 1, ipt=1),
    ],
    ("kmeans", "taf"): [
        _taf(1, 3, 0.9), _taf(1, 7, 0.9), _taf(2, 6, 0.9), _taf(1, 7, 3.0, ipt=16),
        _taf(2, 14, 0.9, ipt=16),
    ],
    ("kmeans", "iact"): [
        _iact(4, 0.3, None), _iact(4, 0.5, None), _iact(8, 0.5, 16),
    ],
}

#: Fig-6 apps (MiniFE is excluded there: error always > 10%).
FIG6_APPS = ["lulesh", "leukocyte", "binomial", "blackscholes", "lavamd", "kmeans"]
ALL_APPS = FIG6_APPS + ["minife"]


def candidates(app: str, technique: str, effort: str = "quick") -> list[SweepPoint]:
    """Sweep points for one app/technique cell at the requested effort."""
    pts = CANDIDATES.get((app, technique), [])
    if effort == "quick":
        return pts
    # full / paper: Table-2 grids (thinned or complete).
    from repro.apps import get_benchmark

    bench = get_benchmark(app)
    scale = (
        bench.taf_threshold_scale if technique == "taf" else bench.iact_threshold_scale
    )
    return table2_space(
        technique, thinned=(effort != "paper"), threshold_scale=scale
    )


# ---------------------------------------------------------------------------
# Batch-layer plumbing shared by every simulation-backed figure.
# ---------------------------------------------------------------------------
def _executors(
    runner: ExperimentRunner | None,
    engine: BatchEngine | None,
    parallel: int,
    config: SweepConfig | None = None,
) -> tuple[ExperimentRunner, BatchEngine | None, bool]:
    """Resolve the (runner, engine, owned) triple a figure executes on.

    An explicit ``engine`` wins (its runner backs the figure's direct
    ``app``/``baseline`` needs unless a ``runner`` is also given);
    ``parallel > 1`` or a ``config`` wraps the runner in a transient engine
    carrying that policy (surrogate ordering, a shared variant cache, a
    worker pool) — flagged ``owned`` so the figure shuts its worker pool
    down after the evaluation; otherwise the figure runs serially on the
    runner — the legacy path."""
    if engine is not None:
        return (runner or engine.runner), engine, False
    runner = runner or ExperimentRunner()
    owned = False
    if config is not None or (parallel and parallel > 1):
        cfg = config if config is not None else SweepConfig()
        if parallel and parallel > 1 and cfg.workers <= 1:
            cfg = cfg.replace(workers=parallel)
        engine = BatchEngine(config=cfg, runner=runner)
        owned = True
    return runner, engine, owned


def _eval(
    jobs: list[BatchJob],
    runner: ExperimentRunner,
    engine: BatchEngine | None,
    owned: bool = False,
) -> list[RunRecord]:
    """Evaluate a figure's job list: batched via the engine, else serial.

    ``owned`` marks an engine created for this one evaluation; its pool is
    released as soon as the records are in."""
    try:
        if engine is not None:
            return engine.run_jobs(jobs)
        return [
            runner.run_point(j.app, j.device, j.point, site=j.site) for j in jobs
        ]
    finally:
        if owned and engine is not None:
            engine.close()


# ---------------------------------------------------------------------------
# Fig 3 — global memory needed for per-thread memo tables
# ---------------------------------------------------------------------------
@dataclass
class Fig3Result:
    rows: list  # (num_threads, fraction_of_global_memory)
    exhaust_threads: int  # first power of two that exceeds 100%

    def series(self):
        return self.rows


def fig3_memory_scaling(entries: int = 5, entry_bytes: int = 36) -> Fig3Result:
    """Fraction of a V100's global memory vs thread count (Fig 3)."""
    dev = get_device("v100")
    rows = []
    exhaust = None
    for exp in range(10, 32):
        n = 2**exp
        frac = global_memory_fraction_for_tables(n, entries, entry_bytes, dev)
        rows.append((n, frac))
        if exhaust is None and frac >= 1.0:
            exhaust = n
    return Fig3Result(rows=rows, exhaust_threads=exhaust or -1)


# ---------------------------------------------------------------------------
# Fig 4 — TAF algorithm variants
# ---------------------------------------------------------------------------
@dataclass
class Fig4Result:
    variants: dict  # name -> VariantResult
    serialized_slowdown: float  # makespan(c) / makespan(d)
    errors: dict  # name -> mean abs error vs the accurate signal


def fig4_taf_variants(
    n: int = 4096, num_threads: int = 64, hsize: int = 2, psize: int = 2,
    threshold: float = 0.3, seed: int = 7,
) -> Fig4Result:
    """Run the CPU / serialized-GPU / HPAC-Offload TAF algorithms (Fig 4)."""
    rng = np.random.default_rng(seed)
    # A slowly varying signal: the loop of Fig 4(a) with temporal locality.
    t = np.linspace(0, 6 * np.pi, n)
    signal = 10.0 + np.sin(t) + 0.01 * rng.standard_normal(n)
    params = TAFParams(hsize, psize, threshold)
    variants = compare_variants(signal, params, num_threads)
    errors = {
        name: float(np.abs(v.outputs - signal).mean()) for name, v in variants.items()
    }
    return Fig4Result(
        variants=variants,
        serialized_slowdown=variants["gpu_serialized"].makespan
        / variants["gpu_grid_stride"].makespan,
        errors=errors,
    )


# ---------------------------------------------------------------------------
# Fig 6 — best speedup under 10% error, per app × technique × platform
# ---------------------------------------------------------------------------
@dataclass
class Fig6Result:
    db: ResultsDB
    best: dict  # (device_key, app, technique) -> RunRecord | None
    geomean: dict  # device_key -> geomean of per-app best speedups

    def row(self, device_key: str, app: str) -> dict:
        return {
            t: self.best.get((device_key, app, t))
            for t in ("perfo", "taf", "iact")
        }


def fig6_best_speedup(
    apps: list[str] | None = None,
    devices: dict[str, str] | None = None,
    max_error: float = 0.10,
    effort: str = "quick",
    runner: ExperimentRunner | None = None,
    engine: BatchEngine | None = None,
    parallel: int = 0,
    config: SweepConfig | None = None,
) -> Fig6Result:
    """Highest speedup with error < 10% for every benchmark (Fig 6)."""
    apps = apps or FIG6_APPS
    devices = devices or DEVICES
    runner, engine, owned = _executors(runner, engine, parallel, config)
    cells: list[tuple] = []  # (dkey, app, tech, job offset, count)
    jobs: list[BatchJob] = []
    for dkey, dev in devices.items():
        for app in apps:
            for tech in ("perfo", "taf", "iact"):
                if (app, tech) not in CANDIDATES:
                    continue
                pts = candidates(app, tech, effort)
                cells.append((dkey, app, tech, len(jobs), len(pts)))
                jobs.extend(BatchJob(app, dev, pt) for pt in pts)
    results = _eval(jobs, runner, engine, owned)
    db = ResultsDB()
    best: dict = {}
    for dkey, app, tech, offset, count in cells:
        records = results[offset : offset + count]
        db.add(records)
        ok = [r for r in records if r.feasible and r.error <= max_error]
        best[(dkey, app, tech)] = (
            max(ok, key=lambda r: r.reported_speedup) if ok else None
        )
    geo = {}
    for dkey in devices:
        per_app = []
        for app in apps:
            cell = [
                best.get((dkey, app, t)) for t in ("perfo", "taf", "iact")
            ]
            cell = [r for r in cell if r is not None]
            if cell:
                per_app.append(max(r.reported_speedup for r in cell))
        geo[dkey] = geomean_speedup(per_app) if per_app else float("nan")
    return Fig6Result(db=db, best=best, geomean=geo)


# ---------------------------------------------------------------------------
# Fig 7 — LULESH scatter on both platforms
# ---------------------------------------------------------------------------
@dataclass
class ScatterResult:
    app: str
    records: dict  # (device_key, technique) -> list[RunRecord]

    def best_under(self, device_key: str, technique: str, max_error: float = 0.10):
        ok = [
            r for r in self.records.get((device_key, technique), [])
            if r.feasible and r.error <= max_error
        ]
        return max(ok, key=lambda r: r.reported_speedup) if ok else None


def _scatter_jobs(
    app: str, techniques: tuple[str, ...], effort: str,
    devices: dict[str, str] | None = None,
) -> tuple[list[tuple], list[BatchJob]]:
    """Job list for one app's per-device scatter; cells map slices back."""
    cells: list[tuple] = []  # ((dkey, tech), offset, count)
    jobs: list[BatchJob] = []
    for dkey, dev in (devices or DEVICES).items():
        for tech in techniques:
            pts = candidates(app, tech, effort)
            cells.append(((dkey, tech), len(jobs), len(pts)))
            jobs.extend(BatchJob(app, dev, pt) for pt in pts)
    return cells, jobs


def _slice_cells(cells: list[tuple], results: list[RunRecord]) -> dict:
    return {key: results[off : off + n] for key, off, n in cells}


def fig7_lulesh(
    effort: str = "quick",
    runner: ExperimentRunner | None = None,
    engine: BatchEngine | None = None,
    parallel: int = 0,
    config: SweepConfig | None = None,
) -> ScatterResult:
    """LULESH speedup/error scatter for TAF, iACT, perforation (Fig 7)."""
    runner, engine, owned = _executors(runner, engine, parallel, config)
    cells, jobs = _scatter_jobs("lulesh", ("taf", "iact", "perfo"), effort)
    records = _slice_cells(cells, _eval(jobs, runner, engine, owned))
    return ScatterResult(app="lulesh", records=records)


# ---------------------------------------------------------------------------
# Fig 8 — Binomial Options: scatter + items-per-thread trade-off
# ---------------------------------------------------------------------------
@dataclass
class Fig8Result:
    scatter: ScatterResult
    #: device_key -> list of (items_per_thread, speedup, approx_fraction)
    items_sweep: dict


def fig8_binomial(
    effort: str = "quick",
    items: list[int] | None = None,
    runner: ExperimentRunner | None = None,
    engine: BatchEngine | None = None,
    parallel: int = 0,
    config: SweepConfig | None = None,
) -> Fig8Result:
    """Binomial Options TAF/iACT results and the Fig-8c trade-off curve."""
    runner, engine, owned = _executors(runner, engine, parallel, config)
    items = items or [2, 4, 8, 16, 32, 64, 128, 256, 512]
    cells, jobs = _scatter_jobs("binomial", ("taf", "iact"), effort)
    scatter_len = len(jobs)
    for dkey, dev in DEVICES.items():
        jobs.extend(
            BatchJob("binomial", dev, _taf(2, 32, 0.3, "team", ipt))
            for ipt in items
        )
    results = _eval(jobs, runner, engine, owned)
    records = _slice_cells(cells, results)
    sweep: dict = {}
    offset = scatter_len
    for dkey in DEVICES:
        series = []
        for ipt, rec in zip(items, results[offset : offset + len(items)]):
            series.append((ipt, rec.reported_speedup, rec.approx_fraction))
        sweep[dkey] = series
        offset += len(items)
    return Fig8Result(
        scatter=ScatterResult(app="binomial", records=records), items_sweep=sweep
    )


# ---------------------------------------------------------------------------
# Fig 9 — Leukocyte scatter + MiniFE error blow-up
# ---------------------------------------------------------------------------
@dataclass
class Fig9Result:
    leukocyte: ScatterResult
    minife_records: list  # TAF records with exploding error


def fig9_leukocyte_minife(
    effort: str = "quick",
    runner: ExperimentRunner | None = None,
    engine: BatchEngine | None = None,
    parallel: int = 0,
    config: SweepConfig | None = None,
) -> Fig9Result:
    runner, engine, owned = _executors(runner, engine, parallel, config)
    cells, jobs = _scatter_jobs("leukocyte", ("taf", "iact"), effort)
    scatter_len = len(jobs)
    minife_pts = candidates("minife", "taf", effort)
    jobs.extend(BatchJob("minife", NVIDIA, pt) for pt in minife_pts)
    results = _eval(jobs, runner, engine, owned)
    return Fig9Result(
        leukocyte=ScatterResult(
            app="leukocyte", records=_slice_cells(cells, results)
        ),
        minife_records=results[scatter_len:],
    )


# ---------------------------------------------------------------------------
# Fig 10 — Blackscholes: kernel-only scatter + the RSD-threshold anomaly
# ---------------------------------------------------------------------------
@dataclass
class Fig10Result:
    scatter: ScatterResult
    #: threshold -> (error_fraction, approx_fraction, price quantiles)
    threshold_study: dict


def fig10_blackscholes(
    effort: str = "quick",
    thresholds: list[float] | None = None,
    runner: ExperimentRunner | None = None,
    engine: BatchEngine | None = None,
    parallel: int = 0,
    config: SweepConfig | None = None,
) -> Fig10Result:
    """Blackscholes on AMD (kernel-only) and the Fig-10c threshold study."""
    runner, engine, owned = _executors(runner, engine, parallel, config)
    thresholds = thresholds or [0.1, 0.3, 0.6, 1.0, 3.0, 20.0]
    cells, jobs = _scatter_jobs("blackscholes", ("taf", "iact"), effort)
    scatter_len = len(jobs)
    # Fig 10c configurations: history 5, prediction 512, threshold T.
    jobs.extend(
        BatchJob("blackscholes", AMD, _taf(5, 512, T, ipt=8)) for T in thresholds
    )
    results = _eval(jobs, runner, engine, owned)
    records = _slice_cells(cells, results)
    study = {}
    # The quantile comparison needs the raw QoI vectors, not records, so it
    # re-runs the six Fig-10c configurations in the parent (deterministic —
    # same results the batched records were computed from).
    app = runner.app("blackscholes")
    base = runner.baseline("blackscholes", AMD)
    for T, rec in zip(thresholds, results[scatter_len:]):
        regs = app.build_regions("taf", hsize=5, psize=512, threshold=T)
        res = app.run(AMD, regs, items_per_thread=8, seed=runner.seed)
        q = np.quantile(res.qoi, [0.1, 0.25, 0.5, 0.75, 0.9])
        study[T] = {
            "error": rec.error,
            "approx_fraction": rec.approx_fraction,
            "price_quantiles": q,
            "exact_quantiles": np.quantile(base.qoi, [0.1, 0.25, 0.5, 0.75, 0.9]),
        }
    return Fig10Result(
        scatter=ScatterResult(app="blackscholes", records=records),
        threshold_study=study,
    )


# ---------------------------------------------------------------------------
# Fig 11 — LavaMD: scatter + hierarchy comparison
# ---------------------------------------------------------------------------
@dataclass
class Fig11Result:
    scatter: ScatterResult
    #: list of dicts: {threshold, thread_speedup, warp_speedup}
    hierarchy_pairs: list


def fig11_lavamd(
    effort: str = "quick",
    thresholds: list[float] | None = None,
    runner: ExperimentRunner | None = None,
    engine: BatchEngine | None = None,
    parallel: int = 0,
    config: SweepConfig | None = None,
) -> Fig11Result:
    """LavaMD TAF/iACT results and the warp-vs-thread pairing of Fig 11c."""
    runner, engine, owned = _executors(runner, engine, parallel, config)
    thresholds = thresholds or [0.008, 0.009, 0.01, 0.012]
    cells, jobs = _scatter_jobs("lavamd", ("taf", "iact"), effort)
    scatter_len = len(jobs)
    combos = [(T, h, ps) for T in thresholds for h, ps in [(2, 4), (2, 8)]]
    for T, h, ps in combos:
        jobs.append(BatchJob("lavamd", AMD, _taf(h, ps, T, "thread", 1)))
        jobs.append(BatchJob("lavamd", AMD, _taf(h, ps, T, "warp", 1)))
    results = _eval(jobs, runner, engine, owned)
    pairs = []
    for i, (T, h, ps) in enumerate(combos):
        t_rec = results[scatter_len + 2 * i]
        w_rec = results[scatter_len + 2 * i + 1]
        pairs.append(
            {
                "threshold": T,
                "hsize": h,
                "psize": ps,
                "thread_speedup": t_rec.reported_speedup,
                "warp_speedup": w_rec.reported_speedup,
            }
        )
    return Fig11Result(
        scatter=ScatterResult(app="lavamd", records=_slice_cells(cells, results)),
        hierarchy_pairs=pairs,
    )


# ---------------------------------------------------------------------------
# Fig 12 — K-Means: scatter + convergence-speedup correlation
# ---------------------------------------------------------------------------
@dataclass
class Fig12Result:
    scatter: ScatterResult
    #: (convergence_speedup, time_speedup) pairs and their R².
    correlation_points: list
    r2: float


def fig12_kmeans(
    effort: str = "quick",
    runner: ExperimentRunner | None = None,
    engine: BatchEngine | None = None,
    parallel: int = 0,
    config: SweepConfig | None = None,
) -> Fig12Result:
    runner, engine, owned = _executors(runner, engine, parallel, config)
    cells, jobs = _scatter_jobs("kmeans", ("taf", "iact"), effort)
    records = _slice_cells(cells, _eval(jobs, runner, engine, owned))
    points = []
    for recs in records.values():
        for r in recs:
            if r.feasible and "convergence_speedup" in r.extra:
                points.append((r.extra["convergence_speedup"], r.speedup))
    r2 = r_squared(*zip(*points)) if len(points) >= 2 else float("nan")
    return Fig12Result(
        scatter=ScatterResult(app="kmeans", records=records),
        correlation_points=points,
        r2=r2,
    )
