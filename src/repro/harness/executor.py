"""Parallel, checkpointed execution of DSE sweeps.

The paper's exploration is the harness's hot path: Table 2 enumerates
57,288 configurations at up to 988 GPU-hours per benchmark (§4), and each
point is independent of every other — embarrassingly parallel by
construction.  This module scales the harness layer without touching the
device-runtime semantics underneath (the Tian et al. split): sweep points
are sharded into chunks and fanned out across a ``concurrent.futures``
process pool whose workers each own a private
:class:`~repro.harness.runner.ExperimentRunner`, so baseline caches are
per-process and every object crossing the pipe is a picklable
:class:`~repro.harness.runner.RunRecord`.

Durability comes from an incremental JSONL checkpoint: completed records
stream into a :class:`~repro.harness.database.CheckpointWriter` as chunks
finish, and a restarted sweep loads the file and skips every point whose
label is already recorded — a crash at point 56k costs one chunk, not the
campaign.  Worker failures degrade the same way infeasible configurations
already do: a point that raises an unexpected exception is retried, then
recorded as an infeasible row carrying the error note instead of aborting
the sweep.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.gpusim.device import DeviceSpec, get_device
from repro.harness.database import CheckpointWriter, ResultsDB
from repro.harness.reporting import SweepProgress, format_progress
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.harness.sweep import SweepPoint, chunk_points

#: Upper bound on points per chunk; small enough that a killed worker
#: forfeits little work, large enough to amortize pool dispatch.
DEFAULT_CHUNK_SIZE = 16


@dataclass
class SweepReport:
    """Outcome of one :func:`run_sweep_parallel` invocation."""

    #: All requested records in input-point order (checkpointed + fresh).
    records: list[RunRecord]
    #: Points actually executed by this invocation.
    evaluated: int
    #: Points satisfied from the checkpoint without running.
    skipped: int
    #: Points recorded as infeasible by the static preflight, unsimulated.
    pruned: int = 0
    elapsed: float = 0.0
    checkpoint: str | None = None
    extra: dict = field(default_factory=dict)

    @property
    def feasible(self) -> int:
        return sum(1 for r in self.records if r.feasible)

    @property
    def infeasible(self) -> int:
        return len(self.records) - self.feasible


# ----------------------------------------------------------------------
# Worker side.  Each pool process builds one ExperimentRunner in its
# initializer (baselines then cache per-process) and reuses it for every
# chunk it is handed.
_WORKER_RUNNER: ExperimentRunner | None = None


def _init_worker(factory: Callable[[], ExperimentRunner], args: tuple) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = factory(*args)


def _default_factory(problems: dict | None, seed: int) -> ExperimentRunner:
    return ExperimentRunner(problems=problems, seed=seed)


def run_point_with_retry(
    runner: ExperimentRunner,
    app: str,
    device: str | DeviceSpec,
    point: SweepPoint,
    site: str | None = None,
    retries: int = 1,
) -> RunRecord:
    """``runner.run_point`` hardened for sweep duty.

    ``run_point`` already records infeasible configurations gracefully;
    this catches everything else (harness bugs, partial region stats, a
    poisoned worker), retries ``retries`` times, and on persistent failure
    returns an infeasible record carrying the exception so one bad point
    cannot abort a 57k-point campaign."""
    last: Exception | None = None
    for _attempt in range(max(0, retries) + 1):
        try:
            return runner.run_point(app, device, point, site=site)
        except Exception as exc:  # noqa: BLE001 — sweep must survive anything
            last = exc
    return RunRecord(
        app=app,
        device=get_device(device).name,
        technique=point.technique,
        params=dict(point.params),
        level=point.level,
        items_per_thread=point.items_per_thread,
        feasible=False,
        note=(
            f"WorkerError after {retries + 1} attempts: "
            f"{type(last).__name__}: {last}"
        ),
    )


def _run_chunk(
    app: str,
    device: str | DeviceSpec,
    chunk: list[SweepPoint],
    site: str | None,
    retries: int,
) -> list[RunRecord]:
    assert _WORKER_RUNNER is not None, "pool initializer did not run"
    return [
        run_point_with_retry(_WORKER_RUNNER, app, device, pt, site=site, retries=retries)
        for pt in chunk
    ]


# ----------------------------------------------------------------------
def _checkpoint_index(path: str | Path, app: str, dev_name: str) -> dict[str, RunRecord]:
    """Map point label -> record for this (app, device) from a checkpoint."""
    p = Path(path)
    if not p.exists():
        return {}
    index: dict[str, RunRecord] = {}
    for rec in ResultsDB.load(p):
        if rec.app == app and rec.device == dev_name:
            index[SweepPoint.of_record(rec).label()] = rec
    return index


def run_sweep_parallel(
    app: str,
    device: str | DeviceSpec,
    points: list[SweepPoint],
    *,
    site: str | None = None,
    problems: dict | None = None,
    seed: int = 2023,
    max_workers: int | None = None,
    chunk_size: int | None = None,
    checkpoint: str | Path | None = None,
    retries: int = 1,
    progress: bool | Callable[[SweepProgress], None] = False,
    preflight: bool | Callable[..., RunRecord | None] = False,
    runner_factory: Callable[..., ExperimentRunner] | None = None,
    factory_args: tuple | None = None,
) -> SweepReport:
    """Execute ``points`` for one app/device, in parallel, resumably.

    ``max_workers > 1`` shards the pending points into chunks and runs them
    on a process pool; ``max_workers`` of 1 (or ``None``) runs in-process
    but keeps the identical retry/checkpoint/progress behaviour, so the two
    paths produce byte-identical records (the simulation is deterministic
    per seed).

    ``checkpoint`` names a JSONL file: existing records for this
    (app, device) are trusted and their points skipped; fresh records are
    appended and flushed as each chunk completes.  Use one checkpoint file
    per campaign — the resume key is (app, device, point label), which does
    not distinguish ``site`` overrides.

    ``progress`` is ``True`` for a stderr status line per chunk, or a
    callable receiving :class:`~repro.harness.reporting.SweepProgress`.

    ``preflight`` statically vets each pending point before dispatch:
    ``True`` uses :func:`repro.analysis.preflight.make_preflight`; a
    callable ``(app, device, point, site=...) -> RunRecord | None`` is used
    directly.  A non-None return is recorded as an infeasible row (the
    diagnostic code in its note) without entering the simulator; feasible
    points are unaffected, so the surviving records are byte-identical to a
    preflight-disabled run.  Pruned records are checkpointed like any
    other, so a resumed sweep does not re-vet them.

    ``runner_factory``/``factory_args`` override worker construction (it
    must be a picklable top-level callable); the default builds
    ``ExperimentRunner(problems=problems, seed=seed)``.
    """
    t0 = time.monotonic()
    dev = get_device(device)
    factory = runner_factory or _default_factory
    args = factory_args if factory_args is not None else (problems, seed)

    done: dict[str, RunRecord] = {}
    if checkpoint is not None:
        done = _checkpoint_index(checkpoint, app, dev.name)
    wanted = [(pt, pt.label()) for pt in points]
    pending = [pt for pt, label in wanted if label not in done]
    skipped = len(points) - len(pending)

    # Static preflight: vet pending points in the parent (cheap — no
    # simulation) and divert the statically infeasible ones straight to the
    # results, so the pool only ever sees points that might run.
    pruned_records: list[RunRecord] = []
    if preflight:
        if preflight is True:
            from repro.analysis.preflight import make_preflight

            preflight = make_preflight(problems)
        survivors: list[SweepPoint] = []
        for pt in pending:
            rec = preflight(app, device, pt, site=site)
            if rec is None:
                survivors.append(pt)
            else:
                pruned_records.append(rec)
        pending = survivors

    if progress is True:
        def report_progress(p: SweepProgress) -> None:
            print(format_progress(p), file=sys.stderr)
    elif callable(progress):
        report_progress = progress
    else:
        report_progress = None

    workers = max(1, int(max_workers or 1))
    size = chunk_size or max(1, min(DEFAULT_CHUNK_SIZE, len(pending) // (workers * 4) or 1))
    chunks = chunk_points(pending, size)

    writer = CheckpointWriter(checkpoint) if checkpoint is not None else None
    evaluated = feasible = infeasible = 0
    if pruned_records:
        if writer is not None:
            writer.write(pruned_records)
        for rec in pruned_records:
            done[SweepPoint.of_record(rec).label()] = rec

    def absorb(records: list[RunRecord]) -> None:
        nonlocal evaluated, feasible, infeasible
        if writer is not None:
            writer.write(records)
        for rec in records:
            done[SweepPoint.of_record(rec).label()] = rec
            evaluated += 1
            feasible += rec.feasible
            infeasible += not rec.feasible
        if report_progress is not None:
            report_progress(
                SweepProgress(
                    total=len(pending),
                    done=evaluated,
                    feasible=feasible,
                    infeasible=infeasible,
                    skipped=skipped,
                    elapsed=time.monotonic() - t0,
                )
            )

    try:
        if workers == 1:
            runner = factory(*args)
            for chunk in chunks:
                absorb([
                    run_point_with_retry(runner, app, device, pt, site=site,
                                         retries=retries)
                    for pt in chunk
                ])
        elif chunks:
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(chunks)),
                initializer=_init_worker,
                initargs=(factory, args),
            )
            try:
                futures = {
                    pool.submit(_run_chunk, app, device, chunk, site, retries)
                    for chunk in chunks
                }
                while futures:
                    finished, futures = wait(futures, return_when=FIRST_COMPLETED)
                    for fut in finished:
                        absorb(fut.result())
            finally:
                # Never block on queued chunks: a Ctrl-C mid-campaign must
                # tear down promptly, keeping what the checkpoint absorbed.
                pool.shutdown(wait=False, cancel_futures=True)
    finally:
        if writer is not None:
            writer.close()

    return SweepReport(
        records=[done[label] for _pt, label in wanted],
        evaluated=evaluated,
        skipped=skipped,
        pruned=len(pruned_records),
        elapsed=time.monotonic() - t0,
        checkpoint=str(checkpoint) if checkpoint is not None else None,
    )
