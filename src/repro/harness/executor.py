"""Parallel, checkpointed execution of DSE sweeps.

The paper's exploration is the harness's hot path: Table 2 enumerates
57,288 configurations at up to 988 GPU-hours per benchmark (§4), and each
point is independent of every other — embarrassingly parallel by
construction.  This module keeps the PR-1 sweep API
(:func:`run_sweep_parallel`: one app/device, a list of points) but the
execution itself now lives in :mod:`repro.harness.batch`, the general
batch-evaluation engine shared with the figure entry points and the smart
searches.  Going through the batch layer buys the sweep path three things
for free:

* each unique (app, device) baseline is computed once in the parent and
  shipped to every worker, instead of once per worker;
* chunks are sized adaptively from observed points/sec instead of the
  fixed :data:`DEFAULT_CHUNK_SIZE` (pin them via ``config.chunk_size``);
* duplicate points in the input collapse to a single evaluation.

Execution policy arrives as one frozen
:class:`~repro.harness.config.SweepConfig` (the PR-1/PR-3 loose keywords
remain accepted through a :class:`DeprecationWarning` shim), and passing
``engine=`` routes the sweep through a persistent
:class:`~repro.harness.batch.BatchEngine` — its warm worker pool and
session record cache — instead of a per-call pool.

Durability is unchanged: completed records stream into a
:class:`~repro.harness.database.CheckpointWriter` as chunks finish, and a
restarted sweep loads the file and skips every point whose label is
already recorded — a crash at point 56k costs one chunk, not the
campaign.  Worker failures degrade the same way infeasible configurations
already do: a point that raises an unexpected exception is retried (on a
freshly rebuilt runner, in case the exception poisoned the old one's
caches), then recorded as an infeasible row carrying the error note
instead of aborting the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.gpusim.device import DeviceSpec
from repro.harness.batch import (
    TARGET_CHUNK_SECONDS,  # noqa: F401 — canonical home is harness.config
    BatchJob,
    _default_factory,  # noqa: F401 — re-exported for pickling compatibility
    run_batch,
    run_point_with_retry,  # noqa: F401 — public retry wrapper lives in batch
)
from repro.harness.config import UNSET, SweepConfig, resolve_config
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.harness.sweep import SweepPoint

#: Legacy fixed points-per-chunk bound (PR 1).  The batch layer now sizes
#: chunks adaptively; pass ``SweepConfig(chunk_size=DEFAULT_CHUNK_SIZE)``
#: to restore the old static sharding.
DEFAULT_CHUNK_SIZE = 16


@dataclass
class SweepReport:
    """Outcome of one :func:`run_sweep_parallel` invocation."""

    #: All requested records in input-point order (checkpointed + fresh).
    records: list[RunRecord]
    #: Points actually executed by this invocation.
    evaluated: int
    #: Points satisfied from the checkpoint without running.
    skipped: int
    #: Points recorded as infeasible by the static preflight, unsimulated.
    pruned: int = 0
    elapsed: float = 0.0
    checkpoint: str | None = None
    extra: dict = field(default_factory=dict)

    @property
    def feasible(self) -> int:
        return sum(1 for r in self.records if r.feasible)

    @property
    def infeasible(self) -> int:
        return len(self.records) - self.feasible


def run_sweep_parallel(
    app: str,
    device: str | DeviceSpec,
    points: list[SweepPoint],
    *,
    site: str | None = None,
    problems: dict | None = None,
    seed: int = 2023,
    config: SweepConfig | None = None,
    engine=None,
    runner_factory: Callable[..., ExperimentRunner] | None = None,
    factory_args: tuple | None = None,
    **legacy,
) -> SweepReport:
    """Execute ``points`` for one app/device, in parallel, resumably.

    Execution policy lives in ``config`` (a frozen
    :class:`~repro.harness.config.SweepConfig`):

    * ``workers > 1`` shards the pending points into chunks on a process
      pool; ``workers`` of 1 runs in-process with identical
      retry/checkpoint/progress behaviour, so the two paths produce
      byte-identical records (the simulation is deterministic per seed).
    * ``checkpoint`` names a JSONL (or ``.jsonl.gz``) file: existing
      records for this (app, device) are trusted and their points skipped;
      fresh records are appended and flushed as each chunk completes.  The
      resume key is (app, device, point label), which does not distinguish
      ``site`` overrides.
    * ``chunk_size`` pins the shard size; by default chunks are sized
      adaptively toward ``target_chunk_seconds`` of work from observed
      points/sec.  ``share_baselines`` (default) computes the (app, device)
      baseline once in the parent and ships it to every worker.
    * ``progress`` is ``True`` for a stderr status line per chunk, or a
      callable receiving :class:`~repro.harness.reporting.SweepProgress`.
    * ``preflight`` statically vets each pending point before dispatch:
      ``True`` uses :func:`repro.analysis.preflight.make_preflight`; a
      callable ``(app, device, point, site=...) -> RunRecord | None`` is
      used directly.  A non-None return is recorded as an infeasible row
      (the diagnostic code in its note) without entering the simulator;
      feasible points are unaffected, so the surviving records are
      byte-identical to a preflight-disabled run.  Pruned records are
      checkpointed like any other, so a resumed sweep does not re-vet them.

    The PR-1 loose keywords (``max_workers=``, ``checkpoint=``, ...) remain
    accepted and are overlaid onto ``config`` with a
    :class:`DeprecationWarning`.

    ``engine`` routes the sweep through an existing persistent
    :class:`~repro.harness.batch.BatchEngine` — reusing its warm worker
    pool and session record cache — with this call's ``config`` overlaid
    on the engine's for the duration of the call.

    ``runner_factory``/``factory_args`` override worker construction (it
    must be a picklable top-level callable); the default builds
    ``ExperimentRunner(problems=problems, seed=seed)``.  Custom factories
    disable baseline sharing (the factory may not build an
    :class:`ExperimentRunner` at all).
    """
    cfg = resolve_config(config, "run_sweep_parallel", **legacy)
    if cfg.prune:
        # Lattice pruning reorders evaluation into ancestor-first waves —
        # a different driver entirely (see repro.harness.pruning).  The
        # records of every point it does evaluate are byte-identical to
        # this path's.
        if runner_factory is not None:
            raise ValueError(
                "SweepConfig(prune=...) requires the stock runner; "
                "runner_factory is not supported"
            )
        from repro.harness.pruning import run_sweep_pruned

        return run_sweep_pruned(
            app, device, points,
            site=site, problems=problems, seed=seed,
            config=cfg, engine=engine,
        )
    jobs = [BatchJob(app, device, pt, site=site) for pt in points]
    if engine is not None:
        report = engine.submit(jobs, config=cfg).report()
    else:
        report = run_batch(
            jobs,
            problems=problems,
            seed=seed,
            config=cfg,
            runner_factory=runner_factory,
            factory_args=factory_args,
        )
    return SweepReport(
        records=report.records,
        evaluated=report.evaluated,
        skipped=report.skipped,
        pruned=report.pruned,
        elapsed=report.elapsed,
        checkpoint=report.checkpoint,
        extra={
            "deduped": report.deduped,
            "baseline_runs": report.baseline_runs,
            "worker_baseline_runs": report.worker_baseline_runs,
            "variant_hits": report.variant_hits,
            **report.extra,
        },
    )
