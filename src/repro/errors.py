"""Exception hierarchy for the HPAC-Offload reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  The more specific classes mirror failure modes discussed in the
paper:

* :class:`SharedMemoryError` — the AC state did not fit in the shared-memory
  budget configured for the runtime (paper §3.3: the shared memory dedicated
  to approximation state is fixed when building the HPAC-Offload runtime).
* :class:`SimulatedDeadlockError` — a barrier was reached by only a subset of
  a block's threads, the deadlock scenario of §3.1.2 that hierarchical
  decision making is designed to avoid.
* :class:`UnsupportedApproximationError` — the region cannot be approximated
  by the requested technique, e.g. iACT on regions whose input size varies
  per thread (paper §4.1, MiniFE: "HPAC-Offload only supports computations
  with uniform input sizes for all threads").
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An invalid device, launch, or technique configuration was supplied."""


class LaunchError(ConfigurationError):
    """A kernel launch configuration violates device limits."""


class SharedMemoryError(ReproError):
    """A per-block shared-memory allocation exceeded the device budget."""

    def __init__(self, requested: int, in_use: int, capacity: int) -> None:
        self.requested = int(requested)
        self.in_use = int(in_use)
        self.capacity = int(capacity)
        super().__init__(
            f"shared memory exhausted: requested {requested} B with "
            f"{in_use} B already in use, capacity {capacity} B per block"
        )


class GlobalMemoryError(ReproError):
    """A device global-memory allocation exceeded the device capacity."""

    def __init__(self, requested: int, in_use: int, capacity: int) -> None:
        self.requested = int(requested)
        self.in_use = int(in_use)
        self.capacity = int(capacity)
        super().__init__(
            f"device global memory exhausted: requested {requested} B with "
            f"{in_use} B already in use, capacity {capacity} B"
        )


class SimulatedDeadlockError(ReproError):
    """A block barrier was executed under divergent control flow.

    On real hardware this hangs the kernel; the simulator raises instead so
    that tests can assert the scenario is detected (§3.1.2).
    """


class UnsupportedApproximationError(ReproError):
    """The requested AC technique cannot be applied to this region."""


def _render_span(message: str, text: str, position: int, length: int,
                 hint: str | None = None) -> str:
    """Clang-style rendering: message, source line, caret underline."""
    if position < 0 or not text:
        return message
    underline = " " * position + "^" + "~" * max(length - 1, 0)
    rendered = f"{message}\n  {text}\n  {underline}"
    if hint:
        rendered += f"\n  note: {hint}"
    return rendered


class PragmaSyntaxError(ReproError):
    """The ``#pragma approx`` clause text failed to lex or parse."""

    def __init__(self, message: str, text: str = "", position: int = -1,
                 length: int = 1, hint: str | None = None) -> None:
        self.message = message
        self.text = text
        self.position = position
        self.length = max(int(length), 1)
        self.hint = hint
        super().__init__(_render_span(message, text, position, self.length, hint))


class PragmaSemanticError(ReproError):
    """The clause text parsed but is semantically invalid (bad parameter
    values, missing in/out declarations, conflicting clauses, ...).

    Like :class:`PragmaSyntaxError`, carries a source span (``text``,
    ``position``, ``length``) so sema failures render with the same caret
    diagnostics pointing at the offending clause or argument.
    """

    def __init__(self, message: str, text: str = "", position: int = -1,
                 length: int = 1, hint: str | None = None) -> None:
        self.message = message
        self.text = text
        self.position = position
        self.length = max(int(length), 1)
        self.hint = hint
        super().__init__(_render_span(message, text, position, self.length, hint))


class HarnessError(ReproError):
    """A design-space-exploration run failed in the harness layer."""
