"""HPAC-Offload reproduction: portable approximate computing for
GPU-offloaded HPC applications, on a simulated SIMT substrate.

Reproduces Fink, Parasyris, Georgakoudis & Menon, *HPAC-Offload:
Accelerating HPC Applications with Portable Approximate Computing on the
GPU* (SC 2023).  See DESIGN.md for the system inventory and the
substitution argument for the simulated GPUs.

Quick tour
----------
>>> from repro import compile_pragma, get_benchmark
>>> spec = compile_pragma("memo(out:3:5:1.5f) out(o[i])", name="price")
>>> app = get_benchmark("blackscholes")
>>> accurate = app.run("v100_small")
>>> approx = app.run("v100_small",
...                  app.build_regions("taf", hsize=3, psize=5, threshold=1.5))
>>> accurate.kernel_seconds > 0
True

Subpackages
-----------
* :mod:`repro.gpusim` — the SIMT GPU simulator (devices, timing, memory);
* :mod:`repro.openmp` — OpenMP-offload-style frontend (target/teams/map);
* :mod:`repro.pragma` — the ``#pragma approx`` clause compiler;
* :mod:`repro.approx` — the HPAC-Offload runtime (TAF, iACT, perforation,
  hierarchical decisions);
* :mod:`repro.apps` — the seven Table-1 benchmarks;
* :mod:`repro.harness` — DSE sweeps, metrics, and figure reproductions;
* :mod:`repro.analysis` — static checks: ``repro lint`` diagnostics with
  stable ``HPAC0xx`` codes, and the sweep preflight built on them.
"""

from repro.approx import (
    ApproxRuntime,
    HierarchyLevel,
    IACTParams,
    PerfoParams,
    PerforationKind,
    RegionSpec,
    TAFParams,
    Technique,
)
from repro.apps import BENCHMARKS, get_benchmark
from repro.errors import (
    ConfigurationError,
    PragmaSemanticError,
    PragmaSyntaxError,
    ReproError,
    SharedMemoryError,
    SimulatedDeadlockError,
    UnsupportedApproximationError,
)
from repro.gpusim import (
    DeviceSpec,
    GridContext,
    amd_mi250x,
    get_device,
    launch,
    nvidia_v100,
)
from repro.harness import (
    BatchEngine,
    ExperimentRunner,
    ResultsDB,
    SweepConfig,
    mape,
    mcr,
    speedup,
)
from repro.openmp import OffloadProgram
from repro.pragma import compile_pragma, compile_pragmas
from repro import api

__version__ = "1.0.0"

__all__ = [
    "ApproxRuntime",
    "api",
    "BENCHMARKS",
    "BatchEngine",
    "ConfigurationError",
    "DeviceSpec",
    "ExperimentRunner",
    "GridContext",
    "HierarchyLevel",
    "IACTParams",
    "OffloadProgram",
    "PerfoParams",
    "PerforationKind",
    "PragmaSemanticError",
    "PragmaSyntaxError",
    "RegionSpec",
    "ReproError",
    "ResultsDB",
    "SharedMemoryError",
    "SimulatedDeadlockError",
    "SweepConfig",
    "TAFParams",
    "Technique",
    "UnsupportedApproximationError",
    "__version__",
    "amd_mi250x",
    "compile_pragma",
    "compile_pragmas",
    "get_benchmark",
    "get_device",
    "launch",
    "mape",
    "mcr",
    "nvidia_v100",
    "speedup",
]
